// SC10 Figure 5: one-way counted-remote-write latency vs. torus hops on a
// 512-node (8x8x8) machine, for 0 B and 256 B payloads, unidirectional and
// bidirectional. Hops 1-4 run along X; hops 5-12 add Y then Z hops.
// Paper anchors: 162 ns at 1 hop, 76 ns/hop in X, 54 ns/hop in Y/Z, and a
// 12-hop latency roughly 5x the 1-hop latency.
//
// The measurement itself lives in the service runner (src/serve): this
// driver builds the canonical Fig. 5 job spec, runs it on a local arena,
// and formats the returned metrics — the same code path a fig5-ping job
// takes through simd_server.
#include "bench_common.hpp"

#include "plan_registry.hpp"
#include "serve/job_spec.hpp"
#include "serve/runner.hpp"
#include "verify/timing.hpp"

using namespace anton;

namespace {

/// Static critical-path lower bound of a single one-corner ping (the same
/// plan the verify_plans timing oracle prices), in ns. Recorded as the
/// "paper" reference of the *_static_bound metrics: deviation is then the
/// measured/bound slack minus one, which must stay non-negative (soundness)
/// and within the committed baseline's trajectory (tightness).
double staticPingBoundNs(util::TorusCoord corner) {
  verify::TimingOptions opts;
  opts.rounds = 1;
  return verify::analyzeTiming(tools::buildPingPlan(corner), opts)
      .criticalPathNs;
}

}  // namespace

int main() {
  bench::banner("Figure 5: one-way latency vs. network hops (8x8x8 torus)");

  serve::JobSpec spec = serve::fig5PingSpec(/*maxHops=*/12,
                                            /*payloadBytes=*/256);
  sim::Simulator arena;
  serve::RunOutcome out = serve::runJob(spec, arena);
  auto at = [&](const std::string& key) { return out.metrics.at(key); };
  auto hopKey = [](const char* prefix, int payload, int hops) {
    return std::string(prefix) + std::to_string(payload) + "_h" +
           std::to_string(hops);
  };

  util::TablePrinter table({"hops", "0B uni (ns)", "0B bidir (ns)",
                            "256B uni (ns)", "256B bidir (ns)"});
  util::CsvWriter csv("fig05_latency_vs_hops.csv");
  csv.row("hops", "uni0_ns", "bidir0_ns", "uni256_ns", "bidir256_ns");
  for (int h = 0; h <= spec.maxHops; ++h) {
    double u0 = at(hopKey("uni", 0, h));
    double b0 = at(hopKey("bidir", 0, h));
    double u256 = at(hopKey("uni", 256, h));
    double b256 = at(hopKey("bidir", 256, h));
    table.addRow({std::to_string(h), util::TablePrinter::num(u0, 1),
                  util::TablePrinter::num(b0, 1),
                  util::TablePrinter::num(u256, 1),
                  util::TablePrinter::num(b256, 1)});
    csv.row(h, u0, b0, u256, b256);
  }
  table.print(std::cout);

  double h1 = at("uni0_h1");
  double h4 = at("uni0_h4");
  double h12 = at("uni0_h12");
  bench::JsonReporter json("fig05");
  json.record("one_hop_latency", 162.0, h1, "ns");
  json.record("x_slope", 76.0, (h4 - h1) / 3.0, "ns/hop");
  json.record("twelve_hop_ratio", 5.0, h12 / h1, "x");
  // Fig. 5 runs hops 1-4 along X, 5-8 add Y, 9-12 add Z: the 1-hop corner
  // is (1,0,0) and the 12-hop corner (4,4,4).
  json.record("one_hop_static_bound", staticPingBoundNs({1, 0, 0}), h1, "ns");
  json.record("twelve_hop_static_bound", staticPingBoundNs({4, 4, 4}), h12,
              "ns");
  std::cout << "\npaper anchors: 1 hop = 162 ns (measured "
            << util::TablePrinter::num(h1, 1) << "), X slope = 76 ns/hop (measured "
            << util::TablePrinter::num((h4 - h1) / 3.0, 1)
            << "), 12-hop/1-hop = ~5x (measured "
            << util::TablePrinter::num(h12 / h1, 2) << "x)\n"
            << "series written to fig05_latency_vs_hops.csv\n";
  return 0;
}
