// SC10 Figure 7: total time to transfer 2 KB between two nodes as a
// function of the number of messages it is split into (1..64), on Anton at
// 1 and 4 hops and on the LogGP InfiniBand baseline. Panel (a) absolute,
// panel (b) normalized to the single-message transfer.
//
// On Anton a "message" larger than the 256 B payload limit is carried by
// multiple packets; the per-message software cost is the pipelined
// injection slot, so splitting is cheap (the paper's fine-grained-messaging
// argument). On InfiniBand each message pays the per-message gap g.
#include "bench_common.hpp"

#include "cluster/network.hpp"

using namespace anton;

namespace {

constexpr std::size_t kTotalBytes = 2048;

// Anton: split 2 KB into n logical messages; each message becomes
// ceil(size/256) packets; the last packet of the last message carries the
// completion count. Receiver polls for the total packet count.
double antonTransferUs(int hops, int messages) {
  sim::Simulator sim;
  net::Machine m(sim, {8, 8, 8});
  net::ClientAddr src{0, net::kSlice0};
  net::ClientAddr dst{util::torusIndex({std::min(hops, 4), 0, 0}, m.shape()),
                      net::kSlice0};

  std::size_t perMsg = kTotalBytes / std::size_t(messages);
  std::uint64_t totalPackets = 0;
  {
    std::size_t rem = kTotalBytes;
    while (rem > 0) {
      std::size_t msg = std::min(perMsg, rem);
      totalPackets += (msg + net::kMaxPayloadBytes - 1) / net::kMaxPayloadBytes;
      rem -= msg;
    }
  }

  double done = -1;
  auto receiver = [](net::Machine& mm, net::ClientAddr d, std::uint64_t count,
                     double& out) -> sim::Task {
    co_await mm.client(d).waitCounter(0, count);
    out = sim::toUs(mm.sim().now());
  };
  auto sender = [](net::Machine& mm, net::ClientAddr s, net::ClientAddr d,
                   std::size_t per) -> sim::Task {
    std::size_t rem = kTotalBytes;
    std::uint32_t addr = 0;
    while (rem > 0) {
      std::size_t msg = std::min(per, rem);
      rem -= msg;
      while (msg > 0) {
        std::size_t chunk = std::min(msg, net::kMaxPayloadBytes);
        net::NetworkClient::SendArgs args;
        args.dst = d;
        args.counterId = 0;
        args.address = addr;
        args.inOrder = true;
        args.payload = net::makeZeroPayload(chunk);
        co_await mm.client(s).send(args);
        addr += std::uint32_t(chunk);
        msg -= chunk;
      }
    }
  };
  sim.spawn(receiver(m, dst, totalPackets, done));
  sim.spawn(sender(m, src, dst, perMsg));
  sim.run();
  return done;
}

double infinibandTransferUs(int messages) {
  sim::Simulator sim;
  cluster::ClusterMachine cm(sim, 2);
  std::size_t perMsg = kTotalBytes / std::size_t(messages);
  double done = -1;
  auto receiver = [&](int n) -> sim::Task {
    for (int i = 0; i < n; ++i) co_await cm.recv(1, 0, 1);
    done = sim::toUs(sim.now());
  };
  auto sender = [&](int n) -> sim::Task {
    for (int i = 0; i < n; ++i) co_await cm.send(0, 1, 1, perMsg);
  };
  sim.spawn(receiver(messages));
  sim.spawn(sender(messages));
  sim.run();
  return done;
}

}  // namespace

int main() {
  bench::banner("Figure 7: 2 KB transferred in n messages");
  util::TablePrinter table({"messages", "IB (us)", "Anton 4-hop (us)",
                            "Anton 1-hop (us)", "IB norm", "A4 norm",
                            "A1 norm"});
  util::CsvWriter csv("fig07_message_granularity.csv");
  csv.row("messages", "ib_us", "anton4_us", "anton1_us");

  double ib1 = infinibandTransferUs(1);
  double a4_1 = antonTransferUs(4, 1);
  double a1_1 = antonTransferUs(1, 1);
  for (int n : {1, 2, 4, 8, 16, 32, 48, 64}) {
    double ib = infinibandTransferUs(n);
    double a4 = antonTransferUs(4, n);
    double a1 = antonTransferUs(1, n);
    table.addRow({std::to_string(n), util::TablePrinter::num(ib, 2),
                  util::TablePrinter::num(a4, 2), util::TablePrinter::num(a1, 2),
                  util::TablePrinter::num(ib / ib1, 2),
                  util::TablePrinter::num(a4 / a4_1, 2),
                  util::TablePrinter::num(a1 / a1_1, 2)});
    csv.row(n, ib, a4, a1);
  }
  table.print(std::cout);

  double ib64 = infinibandTransferUs(64);
  double a164 = antonTransferUs(1, 64);
  std::cout << "\npaper shape: IB grows to ~8x its single-message time at 64 "
               "messages (measured "
            << util::TablePrinter::num(ib64 / ib1, 1)
            << "x); Anton stays within ~2x (measured "
            << util::TablePrinter::num(a164 / a1_1, 2) << "x)\n"
            << "series written to fig07_message_granularity.csv\n";
  return (a164 / a1_1 < 3.0 && ib64 / ib1 > 4.0) ? 0 : 1;
}
