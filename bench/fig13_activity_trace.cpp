// SC10 Figure 13: machine activity over two time steps (one range-limited,
// one long-range) of the DHFR-scale simulation — the model's logic-analyzer
// view. Columns on the left: traffic on the six torus link directions;
// software phases of the Tensilica cores / geometry cores / HTIS are
// recorded by the MD choreography. Rendered as an ASCII timeline plus a CSV
// interval dump; also prints the per-step message statistics the paper
// quotes (§IV-C: >250 sent, >500 received per node per step).
#include <fstream>

#include "bench_common.hpp"

#include "md/anton_app.hpp"
#include "trace/activity.hpp"

using namespace anton;

int main() {
  bench::banner("Figure 13: activity trace of two time steps");

  sim::Simulator sim;
  net::Machine machine(sim, {4, 4, 4});
  trace::ActivityTrace tr;
  machine.setTrace(&tr);

  md::SyntheticSystemParams sp;
  sp.targetAtoms = 23558 / 8;
  sp.seed = 2010;
  md::MDSystem sys = md::buildSyntheticSystem(sp);

  md::AntonMdConfig cfg;
  cfg.force.cutoff = 2.2;
  cfg.ewald.grid = 16;
  cfg.longRangeInterval = 2;
  cfg.thermostatTau = 0.05;
  cfg.migrationInterval = 100;
  cfg.homeBoxMarginFrac = 0.08;

  md::AntonMdApp app(machine, sys, cfg);
  machine.resetStats();
  sim::Time t0 = sim.now();
  app.runSteps(2);  // range-limited then long-range
  sim::Time t1 = sim.now();

  std::cout << "step 1 (range-limited): "
            << util::TablePrinter::num(app.stepTimings()[0].totalUs, 1)
            << " us; step 2 (long-range): "
            << util::TablePrinter::num(app.stepTimings()[1].totalUs, 1)
            << " us\n\n";
  std::cout << tr.timeline(t0, t1, 100) << "\n";

  std::ofstream csv("fig13_activity_trace.csv");
  csv << tr.csv();
  std::cout << "full interval dump written to fig13_activity_trace.csv ("
            << tr.intervals().size() << " intervals)\n";

  const net::MachineStats& st = machine.stats();
  double perNodeSent = double(st.packetsInjected) / machine.numNodes() / 2.0;
  double perNodeRecv = double(st.packetsDelivered) / machine.numNodes() / 2.0;
  std::cout << "\nper node per step: " << util::TablePrinter::num(perNodeSent, 0)
            << " packets sent, " << util::TablePrinter::num(perNodeRecv, 0)
            << " received (paper: >250 sent, >500 received); multicast "
               "created "
            << st.multicastForks << " replicas in the network\n";
  return perNodeSent > 100 ? 0 : 1;
}
