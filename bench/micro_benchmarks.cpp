// google-benchmark microbenchmarks: host-side performance of the simulation
// kernel, the network model, the FFT, and the force kernels. These measure
// the *simulator's* throughput (events/s, packets/s), not simulated time.
#include <benchmark/benchmark.h>

#include "core/allreduce.hpp"
#include "fft/fft1d.hpp"
#include "fft/grid3d.hpp"
#include "md/forces.hpp"
#include "net/machine.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

using namespace anton;

namespace {

void BM_EventQueueThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator s;
    int n = int(state.range(0));
    for (int i = 0; i < n; ++i) s.after(sim::ns(i % 97), [] {});
    s.run();
    benchmark::DoNotOptimize(s.eventsProcessed());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueThroughput)->Arg(1 << 12)->Arg(1 << 16);

void BM_CoroutineTaskSpawn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator s;
    auto worker = [](sim::Simulator& ss) -> sim::Task {
      co_await ss.delay(sim::ns(5));
      co_await ss.delay(sim::ns(5));
    };
    for (int i = 0; i < state.range(0); ++i) s.spawn(worker(s));
    s.run();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CoroutineTaskSpawn)->Arg(1 << 10);

void BM_PacketRoutingRate(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator s;
    net::MachineConfig cfg;
    cfg.clientMemBytes = 64 << 10;
    net::Machine m(s, {8, 8, 8}, cfg);
    net::NetworkClient::SendArgs args;
    args.counterId = 0;
    for (int i = 0; i < state.range(0); ++i) {
      args.dst = {(i * 37) % 512, net::kSlice0};
      m.client({i % 512, net::kSlice1}).post(args);
    }
    s.run();
    benchmark::DoNotOptimize(m.stats().packetsDelivered);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PacketRoutingRate)->Arg(1 << 12)->Iterations(20);

void BM_AllReduce512(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator s;
    net::MachineConfig mc;
    mc.clientMemBytes = 192 << 10;
    net::Machine m(s, {8, 8, 8}, mc);
    core::AllReduceConfig cfg;
    cfg.memBase = 0x8000;
    core::DimOrderedAllReduce red(m, cfg);
    auto task = [&](int node) -> sim::Task {
      std::vector<double> in(4, double(node));
      co_await red.run(node, std::move(in), nullptr);
    };
    for (int n = 0; n < 512; ++n) s.spawn(task(n));
    s.run();
  }
  state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_AllReduce512)->Iterations(3);

void BM_Fft1d(benchmark::State& state) {
  std::size_t n = std::size_t(state.range(0));
  sim::Rng rng(1);
  std::vector<fft::Complex> a(n);
  for (auto& x : a) x = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  for (auto _ : state) {
    std::vector<fft::Complex> b = a;
    fft::fft1d(b, false);
    benchmark::DoNotOptimize(b.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Fft1d)->Arg(32)->Arg(256)->Arg(4096);

void BM_Fft3d32(benchmark::State& state) {
  fft::Grid3D g(32, 32, 32);
  sim::Rng rng(2);
  for (auto& x : g.data()) x = {rng.uniform(-1, 1), 0.0};
  for (auto _ : state) {
    fft::Grid3D h = g;
    fft::fft3d(h, false);
    benchmark::DoNotOptimize(h.data().data());
  }
  state.SetItemsProcessed(state.iterations() * long(g.size()));
}
BENCHMARK(BM_Fft3d32);

void BM_RangeLimitedForces(benchmark::State& state) {
  md::SyntheticSystemParams p;
  p.targetAtoms = int(state.range(0));
  md::MDSystem sys = md::buildSyntheticSystem(p);
  md::ForceParams fp;
  for (auto _ : state) {
    std::vector<md::Vec3> f(std::size_t(sys.numAtoms()));
    double e = md::rangeLimitedForces(sys, fp, f);
    benchmark::DoNotOptimize(e);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RangeLimitedForces)->Arg(1000)->Arg(4000);

void BM_BondedForces(benchmark::State& state) {
  md::SyntheticSystemParams p;
  p.targetAtoms = 4000;
  md::MDSystem sys = md::buildSyntheticSystem(p);
  for (auto _ : state) {
    std::vector<md::Vec3> f(std::size_t(sys.numAtoms()));
    double e = md::bondedForces(sys, f);
    benchmark::DoNotOptimize(e);
  }
  state.SetItemsProcessed(state.iterations() *
                          long(sys.bonds.size() + sys.angles.size() +
                               sys.dihedrals.size()));
}
BENCHMARK(BM_BondedForces);

}  // namespace

BENCHMARK_MAIN();
