// SC10 Table 2: global all-reduce latency on Anton machines of 64 to 1024
// nodes for 0-byte (pure barrier) and 32-byte reductions, plus the two
// comparison anchors of §IV-B4: the 512-node InfiniBand cluster (~35.5 us,
// a 20x gap) and BlueGene/L's hardware tree (4.22 us for 16 B at 512
// nodes). Includes the radix-2 butterfly ablation the paper argues against.
//
// The dimension-ordered measurements run through the service runner
// (src/serve) via the canonical Table 2 job spec — the same code path a
// table2-allreduce job takes through simd_server. The butterfly ablation
// and the cluster anchor are driver-local: they are comparison points, not
// service job families.
#include "bench_common.hpp"

#include "cluster/collectives.hpp"
#include "core/allreduce.hpp"
#include "plan_registry.hpp"
#include "serve/job_spec.hpp"
#include "serve/runner.hpp"
#include "verify/timing.hpp"

using namespace anton;

namespace {

double dimOrderedUs(sim::Simulator& arena, util::TorusShape shape,
                    int words) {
  serve::RunOutcome out =
      serve::runJob(serve::table2AllReduceSpec(shape, words), arena);
  return out.metrics.at("allreduce_us");
}

double butterflyUs(net::Machine& m, std::size_t words) {
  core::ButterflyAllReduce red(m);
  double start = sim::toUs(m.sim().now());
  double done = start;
  auto task = [&](int node) -> sim::Task {
    std::vector<double> in(words, double(node));
    co_await red.run(node, std::move(in), nullptr);
    done = std::max(done, sim::toUs(m.sim().now()));
  };
  for (int n = 0; n < m.numNodes(); ++n) m.sim().spawn(task(n));
  m.sim().run();
  return done - start;
}

}  // namespace

int main() {
  bench::banner("Table 2: dimension-ordered all-reduce latency");

  struct Config {
    util::TorusShape shape;
    double paper0Us;
    double paper32Us;
  };
  Config configs[] = {
      {{4, 4, 4}, 0.96, 1.31},   {{8, 2, 8}, 1.24, 1.64},
      {{8, 8, 4}, 1.27, 1.68},   {{8, 8, 8}, 1.32, 1.77},
      {{8, 8, 16}, 1.56, 2.06},
  };

  util::TablePrinter table({"nodes (torus)", "0B paper", "0B model",
                            "32B paper", "32B model", "32B butterfly"});
  util::CsvWriter csv("table2_allreduce.csv");
  csv.row("nodes", "zero_paper_us", "zero_model_us", "b32_paper_us",
          "b32_model_us", "b32_butterfly_us");
  bench::JsonReporter json("table2");

  sim::Simulator arena;  // one reused arena, reset per job — as in serve
  double model512 = 0, zero512 = 0;
  for (const Config& c : configs) {
    double zero = dimOrderedUs(arena, c.shape, 0);
    double b32 = dimOrderedUs(arena, c.shape, 4);
    if (c.shape.size() == 512) {
      model512 = b32;
      zero512 = zero;
    }

    sim::Simulator s2;
    net::Machine m2(s2, c.shape);
    double bfly = butterflyUs(m2, 4);

    std::string name =
        std::to_string(c.shape.size()) + " (" + c.shape.str() + ")";
    table.addRow({name, util::TablePrinter::num(c.paper0Us, 2),
                  util::TablePrinter::num(zero, 2),
                  util::TablePrinter::num(c.paper32Us, 2),
                  util::TablePrinter::num(b32, 2),
                  util::TablePrinter::num(bfly, 2)});
    csv.row(c.shape.size(), c.paper0Us, zero, c.paper32Us, b32, bfly);
    std::string nodes = std::to_string(c.shape.size());
    json.record("allreduce_0B_" + nodes + "n", c.paper0Us, zero, "us");
    json.record("allreduce_32B_" + nodes + "n", c.paper32Us, b32, "us");
  }
  table.print(std::cout);

  // Static critical-path lower bound of one 512-node all-reduce round (the
  // extracted table2-allreduce plan, header-only packets — the 0 B barrier).
  // The bound is the "paper" reference: deviation is the measured/bound
  // slack minus one, pinned by the committed baseline (soundness keeps it
  // non-negative; the trajectory gate keeps the tightness from eroding).
  {
    verify::TimingOptions topts;
    topts.rounds = 1;
    verify::TimingReport tr = verify::analyzeTiming(
        tools::buildNamedPlan("table2-allreduce-8x8x8"), topts);
    json.record("allreduce_0B_512n_static_bound", tr.criticalPathNs / 1000.0,
                zero512, "us");
  }

  // InfiniBand comparison anchor.
  sim::Simulator cs;
  cluster::ClusterMachine cm(cs, 512);
  double done = 0;
  auto task = [&](int node) -> sim::Task {
    std::vector<double> in(4, double(node));
    co_await cluster::allReduce(cm, node, std::move(in), nullptr);
    done = std::max(done, sim::toUs(cs.now()));
  };
  for (int n = 0; n < 512; ++n) cs.spawn(task(n));
  cs.run();

  std::cout << "\n512-node 32B anchors: Anton paper 1.77 us vs InfiniBand "
               "35.5 us (20x). Model: "
            << util::TablePrinter::num(model512, 2) << " us vs "
            << util::TablePrinter::num(done, 1) << " us ("
            << util::TablePrinter::num(done / model512, 1)
            << "x); BG/L tree network: 4.22 us (16 B, literature)\n";
  return (done / model512 > 10.0) ? 0 : 1;
}
