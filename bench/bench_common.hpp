// Shared helpers for the experiment benches: ping-pong measurement on the
// Anton model, paper-vs-measured table assembly, CSV output location.
#pragma once

#include <fstream>
#include <iostream>
#include <string>

#include "net/machine.hpp"
#include "sim/simulator.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace anton::bench {

/// Machine-readable paper-vs-measured records: one JSON object per line,
/// written to BENCH_<name>.json in the working directory. Every bench emits
/// these alongside its human-readable table so tooling can track the
/// deviation trajectory across commits.
class JsonReporter {
 public:
  explicit JsonReporter(const std::string& bench)
      : bench_(bench), out_("BENCH_" + bench + ".json") {}

  /// deviation = (measured - paper) / paper (0 when paper is 0).
  void record(const std::string& metric, double paper, double measured,
              const std::string& unit) {
    double dev = paper != 0.0 ? (measured - paper) / paper : 0.0;
    out_ << "{\"bench\":\"" << bench_ << "\",\"metric\":\"" << metric
         << "\",\"paper\":" << paper << ",\"measured\":" << measured
         << ",\"deviation\":" << dev << ",\"unit\":\"" << unit << "\"}\n";
  }

 private:
  std::string bench_;
  std::ofstream out_;
};

struct PingResult {
  double oneWayNs = 0.0;
};

/// One-way counted-remote-write latency between two processing slices:
/// source posts at t0, receiver polls its sync counter; the successful poll
/// time is the software-to-software latency (SC10 §III-D methodology).
inline double oneWayLatencyNs(net::Machine& m, net::ClientAddr src,
                              net::ClientAddr dst, std::size_t payloadBytes,
                              bool inOrder = false) {
  double done = -1.0;
  auto receiver = [](net::Machine& mm, net::ClientAddr d, double& out)
      -> sim::Task {
    net::NetworkClient& c = mm.client(d);
    co_await c.waitCounter(0, c.counterValue(0) + 1);
    out = sim::toNs(mm.sim().now());
  };
  m.sim().spawn(receiver(m, dst, done));
  double start = sim::toNs(m.sim().now());
  net::NetworkClient::SendArgs args;
  args.dst = dst;
  args.counterId = 0;
  args.inOrder = inOrder;
  if (payloadBytes != 0) args.payload = net::makeZeroPayload(payloadBytes);
  m.client(src).post(args);
  m.sim().run();
  return done - start;
}

/// Bidirectional variant: both endpoints send simultaneously; the reported
/// latency is the later of the two arrivals (ping-pong under full duplex).
inline double bidirLatencyNs(net::Machine& m, net::ClientAddr a,
                             net::ClientAddr b, std::size_t payloadBytes) {
  double doneA = -1.0, doneB = -1.0;
  auto receiver = [](net::Machine& mm, net::ClientAddr d, double& out)
      -> sim::Task {
    net::NetworkClient& c = mm.client(d);
    co_await c.waitCounter(0, c.counterValue(0) + 1);
    out = sim::toNs(mm.sim().now());
  };
  m.sim().spawn(receiver(m, a, doneA));
  m.sim().spawn(receiver(m, b, doneB));
  double start = sim::toNs(m.sim().now());
  net::NetworkClient::SendArgs args;
  args.counterId = 0;
  if (payloadBytes != 0) args.payload = net::makeZeroPayload(payloadBytes);
  args.dst = b;
  m.client(a).post(args);
  args.dst = a;
  args.address = 512;
  m.client(b).post(args);
  m.sim().run();
  return std::max(doneA, doneB) - start;
}

inline void banner(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

}  // namespace anton::bench
