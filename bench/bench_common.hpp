// Shared helpers for the experiment benches: ping-pong measurement on the
// Anton model, paper-vs-measured table assembly, CSV output location.
#pragma once

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>

#include "net/machine.hpp"
#include "net/probe.hpp"
#include "sim/simulator.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace anton::bench {

/// Machine-readable paper-vs-measured records: one JSON object per line,
/// written to BENCH_<name>.json in the working directory. Every bench emits
/// these alongside its human-readable table so tooling can track the
/// deviation trajectory across commits. Output is strict JSON: strings are
/// escaped, numbers round-trip at full double precision, and non-finite
/// values become null (bare `nan`/`inf` would break every parser).
class JsonReporter {
 public:
  explicit JsonReporter(const std::string& bench)
      : bench_(bench), out_("BENCH_" + bench + ".json") {
    if (!out_)
      throw std::runtime_error("JsonReporter: cannot open BENCH_" + bench +
                               ".json for writing");
  }

  /// Write to an explicit path instead of BENCH_<name>.json. Used by tools
  /// (e.g. verify_plans) whose reports are not paper-vs-measured benches and
  /// must not be picked up by the perf-trajectory tooling.
  JsonReporter(const std::string& name, const std::string& path)
      : bench_(name), out_(path) {
    if (!out_)
      throw std::runtime_error("JsonReporter: cannot open " + path +
                               " for writing");
  }

  /// Emit one preformatted line (the caller guarantees it is valid JSON).
  void raw(const std::string& line) {
    out_ << line << '\n';
    if (!out_)
      throw std::runtime_error("JsonReporter: write for " + bench_ + " failed");
  }

  /// deviation = (measured - paper) / paper (0 when paper is 0).
  void record(const std::string& metric, double paper, double measured,
              const std::string& unit) {
    double dev = paper != 0.0 ? (measured - paper) / paper : 0.0;
    out_ << "{\"bench\":" << quoted(bench_) << ",\"metric\":" << quoted(metric)
         << ",\"paper\":" << number(paper) << ",\"measured\":" << number(measured)
         << ",\"deviation\":" << number(dev) << ",\"unit\":" << quoted(unit)
         << "}\n";
    if (!out_)
      throw std::runtime_error("JsonReporter: write to BENCH_" + bench_ +
                               ".json failed");
  }

  /// Full-precision JSON number, or null for non-finite values.
  static std::string number(double v) {
    if (!std::isfinite(v)) return "null";
    std::ostringstream os;
    os.precision(std::numeric_limits<double>::max_digits10);
    os << v;
    return os.str();
  }

  /// JSON string literal: quotes, backslashes and control characters escaped.
  static std::string quoted(const std::string& s) {
    std::string out = "\"";
    for (unsigned char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
          if (c < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out += buf;
          } else {
            out += char(c);
          }
      }
    }
    out += '"';
    return out;
  }

 private:
  std::string bench_;
  std::ofstream out_;
};

struct PingResult {
  double oneWayNs = 0.0;
};

// The latency probes (SC10 §III-D methodology) moved to net/probe.hpp so
// the simulation service's fig5-ping jobs and the benches measure through
// one implementation; the bench-local names remain for existing callers.
using net::bidirLatencyNs;
using net::oneWayLatencyNs;

inline void banner(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

}  // namespace anton::bench
