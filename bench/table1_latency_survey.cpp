// SC10 Table 1: survey of published inter-node software-to-software
// (ping-pong) latencies. The Anton entry is measured live on the model;
// the other machines are the paper's cited literature constants, plus the
// LogGP InfiniBand baseline measured on our cluster model for context.
#include "bench_common.hpp"

#include "cluster/network.hpp"

using namespace anton;

int main() {
  bench::banner("Table 1: inter-node software-to-software latency survey");

  sim::Simulator sim;
  net::Machine m(sim, {8, 8, 8});
  double antonUs = bench::oneWayLatencyNs(m, {0, net::kSlice0},
                                          {util::torusIndex({1, 0, 0}, m.shape()),
                                           net::kSlice0},
                                          0) /
                   1000.0;

  // LogGP model of the DDR2 InfiniBand cluster (our Table 3 baseline).
  sim::Simulator csim;
  cluster::ClusterMachine cm(csim, 2);
  double done = -1;
  auto recv = [&]() -> sim::Task {
    co_await cm.recv(1, 0, 1);
    done = sim::toUs(csim.now());
  };
  auto send = [&]() -> sim::Task { co_await cm.send(0, 1, 1, 8); };
  csim.spawn(recv());
  csim.spawn(send());
  csim.run();

  struct Entry {
    const char* machine;
    double paperUs;  // negative: measured here
    const char* date;
    const char* ref;
  };
  Entry entries[] = {
      {"Anton (this model)", -1, "2009", "measured here"},
      {"Altix 3700 BX2", 1.25, "2006", "[18]"},
      {"QsNetII", 1.28, "2005", "[8]"},
      {"Columbia", 1.6, "2005", "[10]"},
      {"Sun Fire", 1.7, "2002", "[42]"},
      {"EV7", 1.7, "2002", "[26]"},
      {"J-Machine", 1.8, "1993", "[32]"},
      {"QsNET", 1.9, "2001", "[33]"},
      {"Roadrunner (InfiniBand)", 2.16, "2008", "[7]"},
      {"LogGP IB model (this repo)", -2, "-", "measured here"},
      {"Cray T3E", 2.75, "1996", "[37]"},
      {"Blue Gene/P", 2.75, "2008", "[3]"},
      {"Blue Gene/L", 2.8, "2005", "[25]"},
      {"ASC Purple", 4.4, "2005", "[25]"},
      {"Cray XT4", 4.5, "2007", "[2]"},
      {"Red Storm", 6.9, "2005", "[25]"},
      {"SR8000", 9.9, "2001", "[45]"},
  };

  util::TablePrinter table({"machine", "latency (us)", "date", "source"});
  util::CsvWriter csv("table1_latency_survey.csv");
  csv.row("machine", "latency_us", "source");
  for (const Entry& e : entries) {
    double us = e.paperUs == -1 ? antonUs : e.paperUs == -2 ? done : e.paperUs;
    table.addRow({e.machine, util::TablePrinter::num(us, 2), e.date, e.ref});
    csv.row(e.machine, us, e.ref);
  }
  table.print(std::cout);
  std::cout << "\npaper anchor: Anton 0.16 us, ~8x below the best published "
               "(1.25 us); measured "
            << util::TablePrinter::num(antonUs, 3) << " us\n";
  return antonUs < 0.2 ? 0 : 1;
}
