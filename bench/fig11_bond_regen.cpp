// SC10 Figure 11: evolution of per-step execution time as atoms diffuse
// away from their initial bond-program assignment, with and without bond
// program regeneration.
//
// The paper's curve spans 8 million time steps on the real machine; here
// atom diffusion between samples is applied synthetically (random-walk
// displacement calibrated to the same root-mean-square drift per sampling
// gap), then one full simulated step measures the current per-step cost and
// the mean bond-traffic hop distance. The regeneration variant rebuilds the
// bond program every `regenEvery` samples (the paper: every 120k steps,
// installed one regeneration period late; we mirror that lag by
// regenerating from the positions of the previous sample).
#include "bench_common.hpp"

#include "md/anton_app.hpp"

using namespace anton;

namespace {

struct Series {
  std::vector<double> virtualSteps;
  std::vector<double> stepUs;
  std::vector<double> bondHops;
};

Series run(bool regen) {
  sim::Simulator sim;
  net::MachineConfig mcfg;
  mcfg.clientMemBytes = 1 << 20;  // diffusion headroom widens the regions
  net::Machine machine(sim, {4, 4, 4}, mcfg);
  md::SyntheticSystemParams sp;
  sp.targetAtoms = 23558 / 8;
  sp.seed = 42;
  md::MDSystem sys = md::buildSyntheticSystem(sp);

  md::AntonMdConfig cfg;
  cfg.force.cutoff = 2.2;
  cfg.ewald.grid = 16;
  cfg.longRangeInterval = 2;
  cfg.thermostatTau = 0.05;
  cfg.migrationInterval = 1000;  // isolated from migration effects
  cfg.homeBoxMarginFrac = 0.06;
  cfg.packetHeadroom = 1.8;  // diffusion redistributes atoms across nodes

  md::AntonMdApp app(machine, sys, cfg);

  // Each sample represents a 120k-step gap; rms displacement per gap of
  // ~1.6 box-fractions of a node box models liquid diffusion at that scale.
  const int samples = 24;
  const int regenEvery = 3;
  const double swapFraction = 0.30;

  Series out;
  for (int s = 0; s < samples; ++s) {
    if (s > 0) app.syntheticDiffusion(swapFraction, 1000 + std::uint64_t(s));
    if (regen && s > 0 && s % regenEvery == 0) app.regenerateBondProgram();
    app.runSteps(4);  // two range-limited + two long-range steps
    const auto& ts = app.stepTimings();
    double avg = 0.25 * (ts[ts.size() - 1].totalUs + ts[ts.size() - 2].totalUs +
                         ts[ts.size() - 3].totalUs + ts[ts.size() - 4].totalUs);
    out.virtualSteps.push_back(double(s) * 0.12);  // millions of steps
    out.stepUs.push_back(avg);
    out.bondHops.push_back(app.averageBondHops());
  }
  return out;
}

}  // namespace

int main() {
  bench::banner("Figure 11: bond-program aging and regeneration");

  Series without = run(false);
  Series with = run(true);

  util::TablePrinter table({"Msteps", "no-regen step (us)", "no-regen hops",
                            "regen step (us)", "regen hops"});
  util::CsvWriter csv("fig11_bond_regen.csv");
  csv.row("million_steps", "noregen_us", "noregen_hops", "regen_us",
          "regen_hops");
  for (std::size_t i = 0; i < without.stepUs.size(); ++i) {
    table.addRow({util::TablePrinter::num(without.virtualSteps[i], 2),
                  util::TablePrinter::num(without.stepUs[i], 2),
                  util::TablePrinter::num(without.bondHops[i], 2),
                  util::TablePrinter::num(with.stepUs[i], 2),
                  util::TablePrinter::num(with.bondHops[i], 2)});
    csv.row(without.virtualSteps[i], without.stepUs[i], without.bondHops[i],
            with.stepUs[i], with.bondHops[i]);
  }
  table.print(std::cout);

  double head = 0, tailNo = 0, tailYes = 0;
  const std::size_t k = without.stepUs.size();
  for (std::size_t i = 0; i < 3; ++i) head += without.stepUs[i] / 3;
  for (std::size_t i = k - 6; i < k; ++i) {
    tailNo += without.stepUs[i] / 6;
    tailYes += with.stepUs[i] / 6;
  }
  double improvement = (tailNo - tailYes) / tailNo * 100.0;
  double hopsNoTail = 0, hopsYesTail = 0;
  for (std::size_t i = k - 6; i < k; ++i) {
    hopsNoTail += without.bondHops[i] / 6;
    hopsYesTail += with.bondHops[i] / 6;
  }
  std::cout << "\npaper shape: without regeneration, bond traffic drifts to "
               "longer routes and the step slows (14% overall improvement "
               "from regeneration on the paper's benchmark); regeneration "
               "resets the assignment.\n"
            << "model: mean bond hop distance ages to "
            << util::TablePrinter::num(hopsNoTail, 2)
            << " without regeneration vs "
            << util::TablePrinter::num(hopsYesTail, 2)
            << " with; step time " << util::TablePrinter::num(tailNo, 1)
            << " -> " << util::TablePrinter::num(tailYes, 1) << " us ("
            << util::TablePrinter::num(improvement, 1) << "% improvement).\n"
            << "NOTE: the timing effect is muted relative to the paper "
               "because this model\'s critical path is dominated by the "
               "half-shell range-limited traffic (see EXPERIMENTS.md); the "
               "aging mechanism itself - hop growth and its reset - "
               "reproduces cleanly.\n"
            << "(initial step time " << util::TablePrinter::num(head, 1)
            << " us)\nseries written to fig11_bond_regen.csv\n";
  // Success criterion: the aging mechanism (hop growth, reset by regen) and
  // a non-negative timing benefit.
  return (hopsNoTail > 2.0 * hopsYesTail && tailYes <= tailNo + 0.3) ? 0 : 1;
}
