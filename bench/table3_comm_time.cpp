// SC10 Table 3: critical-path communication time and total time per MD
// time step for the 23,558-atom DHFR benchmark on a 512-node Anton vs. the
// 512-node Xeon/InfiniBand Desmond cluster. Long-range interactions and
// temperature control run every other step.
//
// Anton-side numbers are measured by running the full Anton-mapped MD
// application (synthetic DHFR-sized system) on the machine model;
// "communication time" follows the paper's methodology (total minus
// critical-path arithmetic, here obtained by re-running with the compute
// calibration zeroed). The Desmond column runs the LogGP cluster model;
// its compute times are the published Table 3 residuals [15].
//
// Pass --small to run a 64-node, ~2,900-atom scaled configuration (same
// shape, ~8x faster); the full 512-node run takes a few minutes.
#include <cstring>

#include "bench_common.hpp"

#include "cluster/desmond.hpp"
#include "md/anton_app.hpp"

using namespace anton;

namespace {

struct AntonTimes {
  double rlTotal = 0, lrTotal = 0, fft = 0, thermo = 0, avgTotal = 0;
};

md::AntonMdConfig mdConfig(bool small) {
  md::AntonMdConfig cfg;
  cfg.force.cutoff = small ? 2.2 : 2.6;
  cfg.ewald.grid = small ? 16 : 32;
  cfg.thermostatTau = 0.05;
  cfg.thermostatInterval = 2;
  cfg.longRangeInterval = 2;
  cfg.migrationInterval = 100;  // Table 3 profiles non-migration steps
  cfg.homeBoxMarginFrac = 0.08;
  return cfg;
}

AntonTimes measureAnton(bool small, bool zeroCompute) {
  sim::Simulator sim;
  util::TorusShape shape = small ? util::TorusShape{4, 4, 4}
                                 : util::TorusShape{8, 8, 8};
  net::Machine machine(sim, shape);

  md::SyntheticSystemParams sp;
  sp.targetAtoms = small ? 23558 / 8 : 23558;
  sp.seed = 2010;
  md::MDSystem sys = md::buildSyntheticSystem(sp);

  md::AntonMdConfig cfg = mdConfig(small);
  if (zeroCompute) {
    cfg.htisPairNs = cfg.gcBondNs = cfg.gcAngleNs = cfg.gcDihedralNs = 0;
    cfg.integrateAtomNs = cfg.spreadAtomNs = cfg.interpAtomNs = 0;
    cfg.fftConfig.fftPointNs = cfg.fftConfig.packPointNs = 0;
  }

  md::AntonMdApp app(machine, sys, cfg);
  app.runSteps(4);  // two range-limited + two long-range steps

  AntonTimes t;
  int rl = 0, lr = 0;
  for (const md::StepTiming& s : app.stepTimings()) {
    if (s.longRange) {
      t.lrTotal += s.totalUs;
      t.fft += s.fftUs;
      t.thermo += s.thermostatUs;
      ++lr;
    } else {
      t.rlTotal += s.totalUs;
      ++rl;
    }
  }
  t.rlTotal /= std::max(1, rl);
  t.lrTotal /= std::max(1, lr);
  t.fft /= std::max(1, lr);
  t.thermo /= std::max(1, lr);
  t.avgTotal = 0.5 * (t.rlTotal + t.lrTotal);
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  bool small = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--small") == 0) small = true;

  bench::banner(std::string("Table 3: critical-path communication time (") +
                (small ? "64-node scaled" : "512-node DHFR") + ")");

  AntonTimes total = measureAnton(small, false);
  AntonTimes commOnly = measureAnton(small, true);

  cluster::DesmondWorkload w;
  if (small) {
    w.numNodes = 64;
    w.atoms = 23558 / 8;
    w.fftGrid = 16;
    w.fftGroup = 16;
  }
  cluster::DesmondTimes desmond = cluster::measureDesmond(w);
  // Published compute residuals for the Desmond column (total - comm, [15]).
  double desmondRlCompute = 351 - 108, desmondLrCompute = 779 - 416;
  double desmondThermoTotal = 99, desmondFftTotal = 290;

  struct Row {
    const char* phase;
    double paperAntonComm, paperAntonTotal;
    double antonComm, antonTotal;
    double paperDesComm, paperDesTotal;
    double desComm, desTotal;
  };
  Row rows[] = {
      {"average step", 9.8, 15.6, commOnly.avgTotal, total.avgTotal, 262, 565,
       desmond.averageUs,
       desmond.averageUs + 0.5 * (desmondRlCompute + desmondLrCompute)},
      {"range-limited step", 5.0, 9.0, commOnly.rlTotal, total.rlTotal, 108,
       351, desmond.rangeLimitedUs, desmond.rangeLimitedUs + desmondRlCompute},
      {"long-range step", 14.6, 22.2, commOnly.lrTotal, total.lrTotal, 416,
       779, desmond.longRangeUs, desmond.longRangeUs + desmondLrCompute},
      {"FFT-based convolution", 7.5, 8.5, commOnly.fft, total.fft, 230, 290,
       desmond.fftUs, desmondFftTotal},
      {"thermostat", 2.6, 3.0, commOnly.thermo, total.thermo, 78, 99,
       desmond.thermostatUs, desmondThermoTotal},
  };

  util::TablePrinter table({"phase", "Anton comm (paper/model)",
                            "Anton total (paper/model)",
                            "Desmond comm (paper/model)",
                            "Desmond total (paper/model)"});
  util::CsvWriter csv("table3_comm_time.csv");
  csv.row("phase", "anton_comm_us", "anton_total_us", "desmond_comm_us",
          "desmond_total_us");
  for (const Row& r : rows) {
    auto pair = [](double a, double b) {
      return util::TablePrinter::num(a, 1) + " / " + util::TablePrinter::num(b, 1);
    };
    table.addRow({r.phase, pair(r.paperAntonComm, r.antonComm),
                  pair(r.paperAntonTotal, r.antonTotal),
                  pair(r.paperDesComm, r.desComm),
                  pair(r.paperDesTotal, r.desTotal)});
    csv.row(r.phase, r.antonComm, r.antonTotal, r.desComm, r.desTotal);
  }
  table.print(std::cout);

  double ratio = desmond.averageUs / commOnly.avgTotal;
  std::cout << "\nheadline: Anton critical-path communication is 1/"
            << util::TablePrinter::num(ratio, 0)
            << " of the Desmond/InfiniBand cluster (paper: 1/27)\n"
            << "per-step traffic: avg node sends "
            << "over 250 messages per step on the real machine; see "
               "machine stats in fig13 bench for this model\n";
  return ratio > 5.0 ? 0 : 1;
}
