#!/usr/bin/env python3
"""Unit check for check_perf_trajectory.py's gating protocol.

Runs entirely on synthetic BENCH_*.json fixtures in temp directories — no
benches needed. Pins the four contractual behaviours:

  * within-slack drift passes;
  * |deviation| growth beyond slack fails;
  * a baseline metric missing from the fresh run fails;
  * a fresh metric with no committed baseline key fails loudly, naming the
    baseline directory the author must refresh (the ISSUE 8 satellite: new
    metrics must be pinned in the same change that introduces them).
"""

import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import check_perf_trajectory as cpt  # noqa: E402


def write_records(path, records):
    with open(path, "w", encoding="utf-8") as f:
        for rec in records:
            f.write(json.dumps(rec) + "\n")


def record(bench, metric, deviation):
    return {"bench": bench, "metric": metric, "paper": 1.0,
            "measured": 1.0 + (deviation or 0.0), "deviation": deviation,
            "unit": "x"}


class CheckPerfTrajectoryTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.baseline_dir = os.path.join(self.tmp.name, "baseline")
        os.makedirs(self.baseline_dir)
        self.fresh_path = os.path.join(self.tmp.name, "BENCH_fresh.json")
        write_records(os.path.join(self.baseline_dir, "BENCH_a.json"),
                      [record("a", "latency", 0.10),
                       record("a", "throughput", -0.05)])

    def tearDown(self):
        self.tmp.cleanup()

    def run_check(self, fresh_records, slack=0.02):
        write_records(self.fresh_path, fresh_records)
        return cpt.check([self.fresh_path], self.baseline_dir, slack)

    def test_within_slack_passes(self):
        rc = self.run_check([record("a", "latency", 0.11),
                             record("a", "throughput", -0.06)])
        self.assertEqual(rc, 0)

    def test_deviation_growth_beyond_slack_fails(self):
        rc = self.run_check([record("a", "latency", 0.20),
                             record("a", "throughput", -0.05)])
        self.assertEqual(rc, 1)

    def test_missing_metric_fails(self):
        rc = self.run_check([record("a", "latency", 0.10)])
        self.assertEqual(rc, 1)

    def test_new_metric_without_baseline_key_fails(self):
        rc = self.run_check([record("a", "latency", 0.10),
                             record("a", "throughput", -0.05),
                             record("b", "brand_new", 0.0)])
        self.assertEqual(rc, 1)

    def test_new_metric_failure_names_the_baseline_dir(self):
        # The failure must tell the author what to do, not just say no.
        import io
        import contextlib
        buf = io.StringIO()
        with contextlib.redirect_stdout(buf):
            rc = self.run_check([record("a", "latency", 0.10),
                                 record("a", "throughput", -0.05),
                                 record("b", "brand_new", 0.0)])
        self.assertEqual(rc, 1)
        out = buf.getvalue()
        self.assertIn("b/brand_new", out)
        self.assertIn("no committed baseline key", out)
        self.assertIn(self.baseline_dir, out)

    def test_finiteness_change_fails(self):
        write_records(os.path.join(self.baseline_dir, "BENCH_n.json"),
                      [record("n", "maybe", None)])
        rc = self.run_check([record("a", "latency", 0.10),
                             record("a", "throughput", -0.05),
                             record("n", "maybe", 0.3)])
        self.assertEqual(rc, 1)


if __name__ == "__main__":
    unittest.main()
