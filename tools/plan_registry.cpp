#include "plan_registry.hpp"

#include <stdexcept>

#include "cluster/collectives.hpp"
#include "core/allreduce.hpp"
#include "core/recovery.hpp"
#include "fft/distributed.hpp"
#include "md/anton_app.hpp"
#include "net/machine.hpp"
#include "sim/simulator.hpp"

namespace anton::tools {
namespace {

std::string shapeStr(const util::TorusShape& s) {
  return std::to_string(s.extent(0)) + "x" + std::to_string(s.extent(1)) +
         "x" + std::to_string(s.extent(2));
}

md::AntonMdConfig table3Config() {
  md::AntonMdConfig cfg = quickstartMdConfig();
  cfg.force.cutoff = 2.6;
  cfg.ewald.grid = 32;
  cfg.homeBoxMarginFrac = 0.08;  // Table 3 bench configuration
  cfg.migrationInterval = 100;
  return cfg;
}

/// Shipped standalone subsystems are armed the way the MD app arms them
/// (DropRegistry + recovery hooks), so their extracted waits carry a
/// recovery story and pass the verifier's gating recovery-coverage check.
core::RecoveryHooks shippedRecoveryHooks(core::DropRegistry& registry) {
  core::RecoveryHooks hooks;
  hooks.registry = &registry;
  hooks.config.timeout = sim::us(5000);
  return hooks;
}

verify::CommPlan allReducePlan(util::TorusShape shape) {
  sim::Simulator sim;
  net::Machine machine(sim, shape);
  core::DropRegistry registry(machine);
  core::DimOrderedAllReduce reduce(machine);
  reduce.setRecovery(shippedRecoveryHooks(registry));
  verify::CommPlan p;
  p.name = "table2-allreduce-" + shapeStr(shape);
  p.shape = shape;
  reduce.appendPlan(p, "");
  return p;
}

verify::CommPlan clusterPlan(int numNodes) {
  verify::CommPlan p;
  p.name = "cluster-allreduce-" + std::to_string(numNodes);
  cluster::appendAllReducePlan(p, numNodes, "");
  return p;
}

/// One forward + inverse FFT pair on a 2x2x2 torus — the smallest plan that
/// exercises the per-dimension counter reuse across the two passes.
verify::CommPlan fftPairPlan() {
  sim::Simulator sim;
  net::Machine machine(sim, {2, 2, 2});
  core::DropRegistry registry(machine);
  fft::DistributedFft3D fft3d(machine, 8, 8, 8);
  fft3d.setRecovery(shippedRecoveryHooks(registry));
  verify::CommPlan p;
  p.name = "fft-pair-2x2x2";
  p.shape = {2, 2, 2};
  std::string tail = fft3d.appendPlan(p, "", false, 0);
  fft3d.appendPlan(p, tail, true, 1);
  return p;
}

/// Fig. 5 topology: ping-pong between node 0 and corners at increasing hop
/// distance on the 512-node torus. The pong is what makes the receive slot
/// reusable without a barrier, so the plan models both directions.
verify::CommPlan fig5Plan() {
  verify::CommPlan p;
  p.name = "fig5-ping";
  p.shape = {8, 8, 8};
  p.addPhaseEdge("ping.send", "ping.recv");
  p.addPhaseEdge("ping.recv", "ping.ack");
  const util::TorusCoord corners[] = {
      {1, 0, 0}, {2, 0, 0}, {4, 0, 0}, {4, 4, 0}, {4, 4, 4}};
  verify::CounterExpectation ack;
  ack.site = "ping.ack";
  ack.phase = "ping.ack";
  ack.client = {0, net::kSlice0};
  ack.counterId = 1;
  verify::BufferPlan ackBuf;
  ackBuf.name = "ping.ackslots";
  ackBuf.client = {0, net::kSlice0};
  ackBuf.bytes = std::uint32_t(std::size(corners)) * 32u;
  ackBuf.freePhase = "ping.ack";
  for (std::size_t i = 0; i < std::size(corners); ++i) {
    int dst = util::torusIndex(corners[i], p.shape);
    verify::PlannedWrite ping;
    ping.phase = "ping.send";
    ping.srcNode = 0;
    ping.dst = {dst, net::kSlice0};
    ping.counterId = 0;
    p.writes.push_back(ping);

    verify::CounterExpectation e;
    e.site = "ping.recv";
    e.phase = "ping.recv";
    e.client = {dst, net::kSlice0};
    e.counterId = 0;
    e.perRound = 1;
    e.bySource[0] = 1;
    e.recoveryArmed = true;  // the fault bench arms the ping write
    p.expectations.push_back(std::move(e));

    verify::BufferPlan b;
    b.name = "ping.slot." + std::to_string(dst);
    b.client = {dst, net::kSlice0};
    b.bytes = 32;
    b.freePhase = "ping.recv";
    b.writers.push_back({0, "ping.send"});
    p.buffers.push_back(std::move(b));

    verify::PlannedWrite pong;
    pong.phase = "ping.recv";
    pong.srcNode = dst;
    pong.dst = {0, net::kSlice0};
    pong.counterId = 1;
    p.writes.push_back(pong);
    ack.perRound += 1;
    ack.bySource[dst] = 1;
    ackBuf.writers.push_back({dst, "ping.recv"});
  }
  ack.recoveryArmed = true;
  p.expectations.push_back(std::move(ack));
  p.buffers.push_back(std::move(ackBuf));
  return p;
}

bool parseShapeSuffix(const std::string& s, util::TorusShape* out) {
  int v[3] = {0, 0, 0};
  std::size_t pos = 0;
  for (int d = 0; d < 3; ++d) {
    std::size_t next = d < 2 ? s.find('x', pos) : s.size();
    if (next == std::string::npos || next == pos) return false;
    for (std::size_t i = pos; i < next; ++i)
      if (s[i] < '0' || s[i] > '9') return false;
    v[d] = std::stoi(s.substr(pos, next - pos));
    if (v[d] < 1) return false;
    pos = next + 1;
  }
  *out = {v[0], v[1], v[2]};
  return true;
}

}  // namespace

md::AntonMdConfig quickstartMdConfig() {
  md::AntonMdConfig cfg;
  cfg.force.cutoff = 2.2;
  cfg.ewald.grid = 16;
  cfg.thermostatTau = 0.05;
  cfg.homeBoxMarginFrac = 0.10;
  cfg.recoveryTimeoutUs = 5000;  // arm RecoverableCountedWrite on the waits
  cfg.recoveryMaxResends = 6;
  return cfg;
}

verify::CommPlan buildMdPlan(const std::string& name, util::TorusShape shape,
                             int atoms, const md::AntonMdConfig& cfg) {
  sim::Simulator sim;
  net::Machine machine(sim, shape);
  md::SyntheticSystemParams sp;
  sp.targetAtoms = atoms;
  sp.seed = 2010;
  md::AntonMdApp app(machine, md::buildSyntheticSystem(sp), cfg);
  verify::CommPlan p = app.extractCommPlan();
  p.name = name;
  return p;
}

std::vector<std::string> goldenPlanNames() {
  return {"fig5-ping", "table2-allreduce-2x2x2", "cluster-allreduce-16",
          "fft-pair-2x2x2", "quickstart-md", "md-4x4x1"};
}

verify::CommPlan buildPingPlan(util::TorusCoord corner,
                               util::TorusShape shape) {
  verify::CommPlan p;
  p.name = "ping-" + std::to_string(corner.x) + "-" +
           std::to_string(corner.y) + "-" + std::to_string(corner.z);
  p.shape = shape;
  p.addPhaseEdge("ping.send", "ping.recv");
  int dst = util::torusIndex(corner, shape);
  verify::PlannedWrite w;
  w.phase = "ping.send";
  w.srcNode = 0;
  w.dst = {dst, net::kSlice0};
  w.counterId = 0;
  p.writes.push_back(w);
  verify::CounterExpectation e;
  e.site = "ping.recv";
  e.phase = "ping.recv";
  e.client = {dst, net::kSlice0};
  e.counterId = 0;
  e.perRound = 1;
  e.bySource[0] = 1;
  e.recoveryArmed = true;
  p.expectations.push_back(std::move(e));
  return p;
}

SlackEnvelope timingSlackEnvelope(const std::string& family) {
  // Pinned from the CI oracle runs (verify_plans --timing-oracle) with
  // roughly 2x headroom over the observed ratio; see DESIGN.md §12 for what
  // widens each family's slack. Observed: ping 1.05-1.13 (pure
  // communication, the bound is tight); all-reduce ~2.15 (per-stage
  // synchronization waits the bound's free program-order edges don't
  // price); quickstart-md ~31 (a live MD step is dominated by force/FFT
  // compute between the communication phases the bound prices).
  if (family == "fig5-ping") return {1.5};
  if (family == "quickstart-md") return {60.0};
  if (family == "table2-allreduce") return {4.0};
  return {};
}

verify::CommPlan buildNamedPlan(const std::string& name) {
  if (name == "quickstart-md")
    return buildMdPlan(name, {4, 4, 4}, 1536, quickstartMdConfig());
  if (name == "md-4x4x1")
    // Degenerate torus with a traffic-carrying extent-1 dimension: the shape
    // that used to break the half-shell import accounting (ISSUE 5
    // satellite). Golden so the reduced-offset dedup stays pinned.
    return buildMdPlan(name, {4, 4, 1}, 1536, quickstartMdConfig());
  if (name == "table3-md-8x8x8")
    return buildMdPlan(name, {8, 8, 8}, 23558, table3Config());
  if (name == "fig5-ping") return fig5Plan();
  if (name == "fft-pair-2x2x2") return fftPairPlan();
  const std::string arPrefix = "table2-allreduce-";
  if (name.rfind(arPrefix, 0) == 0) {
    util::TorusShape shape;
    if (parseShapeSuffix(name.substr(arPrefix.size()), &shape))
      return allReducePlan(shape);
  }
  const std::string clPrefix = "cluster-allreduce-";
  if (name.rfind(clPrefix, 0) == 0) {
    const std::string n = name.substr(clPrefix.size());
    if (!n.empty() && n.find_first_not_of("0123456789") == std::string::npos)
      return clusterPlan(std::stoi(n));
  }
  throw std::invalid_argument("unknown plan name: " + name);
}

}  // namespace anton::tools
