#!/usr/bin/env python3
"""Perf-trajectory gate: diff bench deviations against committed baselines.

Every bench emits machine-readable paper-vs-measured records as JSON lines
(BENCH_<name>.json, one object per line: bench, metric, paper, measured,
deviation, unit).  The committed baselines under bench/baseline/ pin the
deviation trajectory; this script compares a fresh run against them and
fails when any metric's |deviation| grew by more than the slack — i.e. the
model drifted further from the paper (or from its own fault-free anchor)
than the baseline run did.

Usage:
    check_perf_trajectory.py [--baseline DIR] [--slack FRAC] [FILE...]

Host-throughput metrics (the kernel bench's *_speedup_vs_legacy_floor)
follow the same protocol with one twist: the "paper" value is the design
target and the measured value is clamped at it, so the committed baseline
records the actual shortfall and this gate protects the trajectory --
the speedup may only approach the target, never fall away from the
baseline by more than the slack.  Raw events/sec records are pinned to
themselves (deviation 0) and are informational only.

With no FILE arguments, every BENCH_*.json in the current directory is
checked.  Metrics present in the baseline but missing from the fresh run
fail (a silently-dropped metric reads as "covered" when it is not), and a
metric present in the fresh run but absent from the committed baseline is
an equally loud failure: an unpinned metric has no trajectory to protect,
so the author who adds a bench metric must commit its baseline key in the
same change.  Exit status: 0 clean, 1 regressions.
"""

import argparse
import glob
import json
import os
import sys


def load_records(path):
    """Parse one BENCH_*.json file of JSON-lines records into a dict
    keyed by (bench, metric). Raises ValueError on malformed JSON — an
    invalid line is itself a regression (the reporter guarantees strict
    JSON)."""
    records = {}
    with open(path, "r", encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as e:
                raise ValueError(f"{path}:{lineno}: invalid JSON: {e}") from e
            for field in ("bench", "metric", "deviation"):
                if field not in rec:
                    raise ValueError(f"{path}:{lineno}: missing '{field}'")
            records[(rec["bench"], rec["metric"])] = rec
    return records


def check(fresh_files, baseline_dir, slack):
    fresh = {}
    for path in fresh_files:
        fresh.update(load_records(path))

    baseline = {}
    for path in sorted(glob.glob(os.path.join(baseline_dir, "BENCH_*.json"))):
        baseline.update(load_records(path))

    if not baseline:
        print(f"error: no baselines found under {baseline_dir}", file=sys.stderr)
        return 1
    if not fresh:
        print("error: no fresh bench records to check", file=sys.stderr)
        return 1

    failures = []
    for key, base in sorted(baseline.items()):
        bench, metric = key
        if key not in fresh:
            failures.append(f"{bench}/{metric}: missing from fresh run "
                            "(baseline expects it)")
            continue
        new = fresh[key]
        base_dev, new_dev = base["deviation"], new["deviation"]
        if base_dev is None or new_dev is None:
            # null deviation = non-finite measurement; only a change is news.
            if (base_dev is None) != (new_dev is None):
                failures.append(f"{bench}/{metric}: deviation "
                                f"{base_dev} -> {new_dev} (finiteness changed)")
            continue
        allowed = abs(base_dev) + slack
        if abs(new_dev) > allowed:
            failures.append(
                f"{bench}/{metric}: |deviation| {abs(new_dev):.4f} exceeds "
                f"baseline {abs(base_dev):.4f} + slack {slack:.4f} "
                f"(measured {new.get('measured')} {new.get('unit', '')}, "
                f"paper {new.get('paper')})")

    new_metrics = sorted(set(fresh) - set(baseline))
    for bench, metric in new_metrics:
        # An unpinned metric has no trajectory to protect: fail loudly and
        # tell the author exactly what to commit, rather than letting the
        # new key ride along unchecked until it silently drifts.
        failures.append(
            f"{bench}/{metric}: present in the fresh run but has no "
            f"committed baseline key — add this metric's record to "
            f"{baseline_dir}/ (refresh from this run) in the same change "
            "that introduced it")

    checked = len(set(baseline) & set(fresh))
    if failures:
        print(f"\nPERF TRAJECTORY REGRESSIONS ({len(failures)}):")
        for f in failures:
            print(f"  FAIL {f}")
        print(f"\n{checked} metrics checked, {len(failures)} failed.")
        print("If the drift is intended, refresh bench/baseline/ from this "
              "run and commit it with the change that caused it.")
        return 1
    print(f"perf trajectory OK: {checked} metrics within slack")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("files", nargs="*",
                    help="fresh BENCH_*.json files (default: ./BENCH_*.json)")
    ap.add_argument("--baseline", default="bench/baseline",
                    help="directory of committed baseline BENCH_*.json files")
    ap.add_argument("--slack", type=float, default=0.02,
                    help="allowed |deviation| growth over baseline "
                         "(absolute, default 0.02)")
    args = ap.parse_args()

    files = args.files or sorted(glob.glob("BENCH_*.json"))
    if not files:
        print("error: no BENCH_*.json files found; run the benches first",
              file=sys.stderr)
        return 1
    try:
        return check(files, args.baseline, args.slack)
    except (OSError, ValueError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
