// simd_client: submit/poll/cancel CLI for the simulation service.
//
// Talks the line-delimited JSON protocol to a simd_server over its AF_UNIX
// socket. Exit status is the contract CI scripts rely on: 0 only when the
// request succeeded AND (for submit --wait / wait) the job finished kDone;
// rejected submissions, malformed specs, failed/cancelled/expired jobs and
// transport errors all exit nonzero while the daemon stays up.
//
// Usage:
//   simd_client --socket PATH submit --family F [flags...] [--wait]
//   simd_client --socket PATH wait ID | poll ID | cancel ID
//   simd_client --socket PATH status | shutdown
//
// submit flags (per family; defaults from the JobSpec factories):
//   --family quickstart-md|fig5-ping|table2-allreduce|fault-sweep
//   --shape AxBxC   --seed N      --steps N     --atoms N
//   --max-hops N    --payload N   --words N
//   --ber X         --max-retransmits N         --degraded
//   --recovery-timeout-us X  --recovery-max-resends N  --recovery-backoff-us X
//   --sharded per-node|slab-x (parallel event kernel; quickstart-md and
//                              table2-allreduce only, results bit-identical)
//   --no-cache      --deadline-ms X             --wait

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <system_error>
#include <vector>

#include "serve/job_spec.hpp"
#include "util/json.hpp"

namespace {

namespace json = anton::util::json;
using anton::serve::JobSpec;

/// Thread-safe errno rendering (std::strerror is not).
std::string errnoStr() {
  return std::generic_category().message(errno);
}

/// Bad command line: caught in main, printed with usage, exit 2.
struct UsageError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// One request line out, one response line back.
class Connection {
 public:
  explicit Connection(const std::string& path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) fail("socket", errnoStr());
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof addr.sun_path)
      fail("connect", "socket path too long");
    std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0)
      fail("connect " + path, errnoStr());
  }
  ~Connection() {
    if (fd_ >= 0) ::close(fd_);
  }
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  json::Value request(const std::string& line) {
    std::string out = line + "\n";
    std::size_t off = 0;
    while (off < out.size()) {
      ssize_t put = ::write(fd_, out.data() + off, out.size() - off);
      if (put <= 0) fail("write", errnoStr());
      off += std::size_t(put);
    }
    std::string response;
    for (;;) {
      std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        response = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        break;
      }
      char chunk[4096];
      ssize_t got = ::read(fd_, chunk, sizeof chunk);
      if (got <= 0) fail("read", "connection closed by server");
      buffer_.append(chunk, std::size_t(got));
    }
    std::cout << response << "\n";
    return json::parse(response, "response");
  }

 private:
  [[noreturn]] static void fail(const std::string& what,
                                const std::string& detail) {
    throw std::runtime_error(what + ": " + detail);
  }
  int fd_ = -1;
  std::string buffer_;
};

bool responseOk(const json::Value& resp) {
  const json::Value* ok = json::optField(resp, "ok");
  return ok != nullptr && ok->type == json::Value::kBool && ok->b;
}

/// 0 only when the job reached kDone.
int jobExitCode(const json::Value& resp) {
  const json::Value* job = json::optField(resp, "job");
  if (job == nullptr) return 1;
  const std::string& state =
      json::asString(json::field(*job, "state", "job.state"), "job.state");
  return state == "done" ? 0 : 1;
}

[[noreturn]] void usage(const std::string& message) {
  throw UsageError(message);
}

int runSubmit(Connection& conn, int argc, char** argv, int i) {
  // Start from the family factory so defaults match the library, then let
  // flags override individual fields.
  std::string family;
  JobSpec spec;
  bool useCache = true;
  bool wait = false;
  double deadlineMs = 0;
  struct Override {
    std::string flag;
    std::string value;
  };
  std::vector<Override> overrides;
  for (; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(arg + " needs a value");
      return argv[++i];
    };
    if (arg == "--family") {
      family = value();
    } else if (arg == "--no-cache") {
      useCache = false;
    } else if (arg == "--wait") {
      wait = true;
    } else if (arg == "--deadline-ms") {
      deadlineMs = std::stod(value());
    } else if (arg == "--degraded") {
      overrides.push_back({arg, "1"});
    } else {
      overrides.push_back({arg, value()});
    }
  }
  if (family.empty()) usage("submit needs --family");
  spec.family = anton::serve::parseFamily(family);
  switch (spec.family) {
    case anton::serve::JobFamily::kQuickstartMd:
      spec = anton::serve::quickstartMdSpec();
      break;
    case anton::serve::JobFamily::kFig5Ping:
      spec = anton::serve::fig5PingSpec();
      break;
    case anton::serve::JobFamily::kTable2AllReduce:
      spec = anton::serve::table2AllReduceSpec(spec.shape);
      break;
    case anton::serve::JobFamily::kFaultSweep:
      spec = anton::serve::faultSweepSpec(spec.shape, 0.0);
      break;
  }
  for (const Override& o : overrides) {
    if (o.flag == "--shape") {
      spec.shape = anton::serve::parseShape(o.value);
    } else if (o.flag == "--seed") {
      spec.seed = std::stoul(o.value);
    } else if (o.flag == "--steps") {
      spec.steps = std::stoi(o.value);
    } else if (o.flag == "--atoms") {
      spec.atoms = std::stoi(o.value);
    } else if (o.flag == "--max-hops") {
      spec.maxHops = std::stoi(o.value);
    } else if (o.flag == "--payload") {
      spec.payloadBytes = std::stoi(o.value);
    } else if (o.flag == "--words") {
      spec.words = std::stoi(o.value);
    } else if (o.flag == "--ber") {
      spec.bitErrorRate = std::stod(o.value);
    } else if (o.flag == "--max-retransmits") {
      spec.maxRetransmits = std::stoi(o.value);
    } else if (o.flag == "--degraded") {
      spec.degradedMode = true;
    } else if (o.flag == "--recovery-timeout-us") {
      spec.recoveryTimeoutUs = std::stod(o.value);
    } else if (o.flag == "--recovery-max-resends") {
      spec.recoveryMaxResends = std::stoi(o.value);
    } else if (o.flag == "--recovery-backoff-us") {
      spec.recoveryBackoffUs = std::stod(o.value);
    } else if (o.flag == "--sharded") {
      spec.sharding = o.value;
    } else {
      usage("unknown submit flag " + o.flag);
    }
  }

  std::ostringstream req;
  req << "{\"op\":\"submit\",\"spec\":" << anton::serve::specToJson(spec)
      << ",\"useCache\":" << (useCache ? "true" : "false")
      << ",\"deadlineMs\":" << json::number(deadlineMs) << "}";
  json::Value resp = conn.request(req.str());
  if (!responseOk(resp)) return 1;
  if (!wait) return 0;
  std::uint64_t id = json::asU64(json::field(resp, "id", "response.id"),
                                 "response.id");
  json::Value done =
      conn.request("{\"op\":\"wait\",\"id\":" + std::to_string(id) + "}");
  if (!responseOk(done)) return 1;
  return jobExitCode(done);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    std::string socketPath;
    int i = 1;
    if (i + 1 < argc && std::string(argv[i]) == "--socket") {
      socketPath = argv[i + 1];
      i += 2;
    }
    if (socketPath.empty()) usage("pass --socket PATH first");
    if (i >= argc) usage("missing command");
    std::string cmd = argv[i++];

    Connection conn(socketPath);
    if (cmd == "submit") return runSubmit(conn, argc, argv, i);
    if (cmd == "wait" || cmd == "poll" || cmd == "cancel") {
      if (i >= argc) usage(cmd + " needs a job id");
      std::string id = argv[i];
      json::Value resp = conn.request("{\"op\":\"" + cmd +
                                      "\",\"id\":" + id + "}");
      if (!responseOk(resp)) return 1;
      return cmd == "wait" ? jobExitCode(resp) : 0;
    }
    if (cmd == "status")
      return responseOk(conn.request("{\"op\":\"status\"}")) ? 0 : 1;
    if (cmd == "shutdown")
      return responseOk(conn.request("{\"op\":\"shutdown\"}")) ? 0 : 1;
    usage("unknown command " + cmd);
  } catch (const UsageError& e) {
    std::cerr << "simd_client: " << e.what() << "\n"
              << "usage: simd_client --socket PATH"
                 " (submit|wait|poll|cancel|status|shutdown) ...\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "simd_client: " << e.what() << "\n";
    return 1;
  }
}
