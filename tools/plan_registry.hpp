// Named shipped communication plans.
//
// One registry backs both the verify_plans CLI (auditing and `--diff` by
// plan name) and the golden-plan test (rebuilding each committed snapshot
// from source and diffing it structurally). Plan construction is
// deterministic — synthetic systems use fixed seeds — so a named plan only
// changes when the extractors or the configurations do, which is exactly
// the delta the golden files are meant to surface.
#pragma once

#include <string>
#include <vector>

#include "verify/plan.hpp"

namespace anton::tools {

/// The plans committed as golden snapshots under tests/golden_plans/.
std::vector<std::string> goldenPlanNames();

/// Build a shipped plan by name. Fixed names: "quickstart-md", "md-4x4x1",
/// "table3-md-8x8x8", "fig5-ping", "fft-pair-2x2x2".
/// Parametric: "table2-allreduce-<X>x<Y>x<Z>", "cluster-allreduce-<N>".
/// Throws std::invalid_argument for anything else.
verify::CommPlan buildNamedPlan(const std::string& name);

}  // namespace anton::tools
