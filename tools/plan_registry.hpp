// Named shipped communication plans.
//
// One registry backs both the verify_plans CLI (auditing and `--diff` by
// plan name) and the golden-plan test (rebuilding each committed snapshot
// from source and diffing it structurally). Plan construction is
// deterministic — synthetic systems use fixed seeds — so a named plan only
// changes when the extractors or the configurations do, which is exactly
// the delta the golden files are meant to surface.
#pragma once

#include <string>
#include <vector>

#include "md/anton_app.hpp"
#include "verify/plan.hpp"

namespace anton::tools {

/// The plans committed as golden snapshots under tests/golden_plans/.
std::vector<std::string> goldenPlanNames();

/// The quickstart MD configuration (recovery armed, quickstart physics).
/// THE shared config: the "quickstart-md" golden plan, the quickstart
/// example and the serve quickstart-md job family all build from it, so
/// there is exactly one place the configuration can drift.
md::AntonMdConfig quickstartMdConfig();

/// Extract the static communication plan of an MD app with the given
/// decomposition (shape/atoms) and configuration, named `name`. The
/// parametric form of the fixed "quickstart-md"/"md-4x4x1" registry
/// entries, used by serve jobs whose specs override shape or atom count.
verify::CommPlan buildMdPlan(const std::string& name, util::TorusShape shape,
                             int atoms, const md::AntonMdConfig& cfg);

/// Build a shipped plan by name. Fixed names: "quickstart-md", "md-4x4x1",
/// "table3-md-8x8x8", "fig5-ping", "fft-pair-2x2x2".
/// Parametric: "table2-allreduce-<X>x<Y>x<Z>", "cluster-allreduce-<N>".
/// Throws std::invalid_argument for anything else.
verify::CommPlan buildNamedPlan(const std::string& name);

}  // namespace anton::tools
