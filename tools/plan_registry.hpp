// Named shipped communication plans.
//
// One registry backs both the verify_plans CLI (auditing and `--diff` by
// plan name) and the golden-plan test (rebuilding each committed snapshot
// from source and diffing it structurally). Plan construction is
// deterministic — synthetic systems use fixed seeds — so a named plan only
// changes when the extractors or the configurations do, which is exactly
// the delta the golden files are meant to surface.
#pragma once

#include <string>
#include <vector>

#include "md/anton_app.hpp"
#include "verify/plan.hpp"

namespace anton::tools {

/// The plans committed as golden snapshots under tests/golden_plans/.
std::vector<std::string> goldenPlanNames();

/// The quickstart MD configuration (recovery armed, quickstart physics).
/// THE shared config: the "quickstart-md" golden plan, the quickstart
/// example and the serve quickstart-md job family all build from it, so
/// there is exactly one place the configuration can drift.
md::AntonMdConfig quickstartMdConfig();

/// Extract the static communication plan of an MD app with the given
/// decomposition (shape/atoms) and configuration, named `name`. The
/// parametric form of the fixed "quickstart-md"/"md-4x4x1" registry
/// entries, used by serve jobs whose specs override shape or atom count.
verify::CommPlan buildMdPlan(const std::string& name, util::TorusShape shape,
                             int atoms, const md::AntonMdConfig& cfg);

/// Build a shipped plan by name. Fixed names: "quickstart-md", "md-4x4x1",
/// "table3-md-8x8x8", "fig5-ping", "fft-pair-2x2x2".
/// Parametric: "table2-allreduce-<X>x<Y>x<Z>", "cluster-allreduce-<N>".
/// Throws std::invalid_argument for anything else.
verify::CommPlan buildNamedPlan(const std::string& name);

/// One-corner one-way ping plan on `shape` (the Fig. 5 torus by default):
/// node 0 posts a single counted write which the corner waits for. The unit
/// plan the timing oracle prices statically and compares against a live
/// net::oneWayLatencyNs measurement of the same pair.
verify::CommPlan buildPingPlan(util::TorusCoord corner,
                               util::TorusShape shape = {8, 8, 8});

/// Pinned measured/static-bound slack of one timing-oracle plan family
/// (DESIGN.md §12). The live schedule must complete no earlier than the
/// static lower bound (ratio >= 1, the soundness half) and no slacker than
/// `maxRatio` (the tightness half): drift past the envelope means the
/// analyzer's pricing decoupled from the machine model and must be
/// re-derived, not re-pinned blindly.
struct SlackEnvelope {
  double maxRatio = 2.0;
};
SlackEnvelope timingSlackEnvelope(const std::string& family);

}  // namespace anton::tools
