// simd_server: the simulation-service daemon (DESIGN.md §9).
//
// Hosts a serve::JobServer and speaks the line-delimited JSON protocol over
// one of two transports:
//
//   --socket PATH   AF_UNIX stream listener, one thread per connection
//   --stdio         stdin/stdout (single session; handy for tests and CI)
//
// Every request line gets exactly one response line. A malformed request
// answers {"ok":false,...} and the daemon stays up; only {"op":"shutdown"}
// (or EOF in --stdio mode) takes it down, after running jobs finish.
//
// Usage:
//   simd_server --socket /tmp/simd.sock [--workers N] [--queue N]
//   simd_server --stdio [--workers N] [--queue N]

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <iostream>
#include <stdexcept>
#include <string>
#include <system_error>
#include <thread>
#include <vector>

#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace {

using anton::serve::handleLine;
using anton::serve::JobServer;
using anton::serve::ProtocolResult;
using anton::serve::ServerConfig;

/// Thread-safe errno rendering (std::strerror is not).
std::string errnoStr() {
  return std::generic_category().message(errno);
}

struct UsageError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Pull one '\n'-terminated line out of fd, buffering leftovers between
/// calls. Returns false on EOF/error with no pending data.
bool readLine(int fd, std::string& buffer, std::string& line) {
  for (;;) {
    std::size_t nl = buffer.find('\n');
    if (nl != std::string::npos) {
      line = buffer.substr(0, nl);
      buffer.erase(0, nl + 1);
      return true;
    }
    char chunk[4096];
    ssize_t got = ::read(fd, chunk, sizeof chunk);
    if (got <= 0) {
      if (buffer.empty()) return false;
      line = buffer;  // final unterminated line
      buffer.clear();
      return true;
    }
    buffer.append(chunk, std::size_t(got));
  }
}

bool writeAll(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    ssize_t put = ::write(fd, data.data() + off, data.size() - off);
    if (put <= 0) return false;
    off += std::size_t(put);
  }
  return true;
}

int runStdio(JobServer& server) {
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    ProtocolResult result = handleLine(server, line);
    std::cout << result.response << "\n" << std::flush;
    if (result.shutdown) break;
  }
  server.shutdown();
  return 0;
}

int runSocket(JobServer& server, const std::string& path) {
  int listenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listenFd < 0) {
    std::cerr << "simd_server: socket: " << errnoStr() << "\n";
    return 1;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    std::cerr << "simd_server: socket path too long: " << path << "\n";
    return 1;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  ::unlink(path.c_str());  // stale socket from a previous run
  if (::bind(listenFd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(listenFd, 16) < 0) {
    std::cerr << "simd_server: bind/listen " << path << ": " << errnoStr()
              << "\n";
    ::close(listenFd);
    return 1;
  }
  std::cout << "simd_server: listening on " << path << "\n" << std::flush;

  std::atomic<bool> stopping{false};
  std::vector<std::thread> sessions;
  for (;;) {
    int conn = ::accept(listenFd, nullptr, nullptr);
    if (conn < 0) {
      if (stopping.load()) break;
      if (errno == EINTR) continue;
      std::cerr << "simd_server: accept: " << errnoStr() << "\n";
      break;
    }
    sessions.emplace_back([&server, &stopping, listenFd, conn] {
      std::string buffer;
      std::string line;
      while (readLine(conn, buffer, line)) {
        if (line.empty()) continue;
        ProtocolResult result = handleLine(server, line);
        if (!writeAll(conn, result.response + "\n")) break;
        if (result.shutdown) {
          // Unblock the accept loop; the daemon drains and exits.
          stopping.store(true);
          ::shutdown(listenFd, SHUT_RDWR);
          break;
        }
      }
      ::close(conn);
    });
  }
  for (std::thread& t : sessions) t.join();
  ::close(listenFd);
  ::unlink(path.c_str());
  server.shutdown();
  std::cout << "simd_server: shut down\n" << std::flush;
  return 0;
}

}  // namespace

int main(int argc, char** argv) try {
  ServerConfig cfg;
  std::string socketPath;
  bool stdio = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) throw UsageError(arg + " needs a value");
      return argv[++i];
    };
    if (arg == "--socket") {
      socketPath = value();
    } else if (arg == "--stdio") {
      stdio = true;
    } else if (arg == "--workers") {
      cfg.workers = std::stoi(value());
    } else if (arg == "--queue") {
      cfg.queueCapacity = std::size_t(std::stoul(value()));
    } else {
      throw UsageError("unknown flag " + arg);
    }
  }
  if (stdio == !socketPath.empty())
    throw UsageError("pass exactly one of --socket PATH, --stdio");

  JobServer server(cfg);
  return stdio ? runStdio(server) : runSocket(server, socketPath);
} catch (const UsageError& e) {
  std::cerr << "simd_server: " << e.what() << "\n"
            << "usage: simd_server (--socket PATH | --stdio)"
               " [--workers N] [--queue N]\n";
  return 2;
}
