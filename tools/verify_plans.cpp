// verify_plans: static communication-plan verifier CLI (ISSUE 3 tentpole,
// deepened by ISSUE 4's event-granular happens-before checks).
//
// Extracts the static communication graph of each shipped configuration —
// the quickstart MD run, the Fig. 5 ping topology, the Table 2 all-reduce
// tori, the Table 3 512-node MD system, the FFT pair, and the
// cluster-baseline all-reduce — WITHOUT running the simulator, and checks
// count consistency, multicast well-formedness (healthy and under declared
// down links, with tree repair), event-level buffer-reuse safety, static
// deadlock freedom, route dimension order, and recovery coverage
// (src/verify/checks.hpp).
//
// Output is strict JSON lines on stdout, mirrored to VERIFY_plans.json:
//   {"kind":"plan", ...}       one per verified plan
//   {"kind":"violation", ...}  each Severity::kError finding
//   {"kind":"lint", ...}       each Severity::kLint finding
//   {"kind":"selftest", ...}   each seeded known-bad plan (must fire)
//   {"kind":"summary", ...}    totals; "ok" decides the exit code
//
// Exit status: 0 when every shipped plan is violation-free AND free of
// recovery-coverage lints (every counted wait must have a recovery story,
// ISSUE 5), and every seeded bad plan produced its expected finding; 1
// otherwise. Other lints stay advisory.
//
// Modes and flags:
//   --fast              skip the 512-node Table 3 extraction
//   --selftest-only     run only the seeded bad plans
//   --dump-plans DIR    write each golden plan's JSON snapshot into DIR
//   --diff A B          structural plan delta. A and B are plan names
//                       (tools/plan_registry.hpp) or snapshot files; prints
//                       one line per difference. Exit 0 when identical, 1
//                       when the plans differ, 2 on error.
//   --lookahead         static parallel-safety audit (ISSUE 8): prove every
//                       cross-shard happens-before edge of each golden plan
//                       meets the shard pair's lookahead bound under the
//                       shipped shardings, and that each seeded-unsafe
//                       sharding fires its diagnostic. Output mirrors to
//                       VERIFY_lookahead.json (committed golden file).
//   --oracle            dynamic causal-order cross-check: record a causal
//                       trace of the live quickstart MD and Fig. 5 ping
//                       shapes and assert every observed cross-shard link
//                       edge respects the statically claimed bound; output
//                       mirrors to VERIFY_oracle.json.
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/allreduce.hpp"
#include "net/latency.hpp"
#include "net/probe.hpp"
#include "plan_registry.hpp"
#include "sim/causal_log.hpp"
#include "sim/simulator.hpp"
#include "verify/checks.hpp"
#include "verify/lookahead.hpp"
#include "verify/snapshot.hpp"

using anton::bench::JsonReporter;

namespace {

namespace verify = anton::verify;
namespace net = anton::net;
namespace core = anton::core;
namespace sim = anton::sim;
namespace tools = anton::tools;

struct Emitter {
  JsonReporter file;
  explicit Emitter(const std::string& path = "VERIFY_plans.json")
      : file("verify_plans", path) {}
  void line(const std::string& l) {
    std::cout << l << '\n';
    file.raw(l);
  }
};

struct Totals {
  int plans = 0;
  int violations = 0;
  int lints = 0;
  int recoveryLints = 0;  ///< recovery-coverage lints gate like violations
  int selftests = 0;
  int selftestFailures = 0;
};

std::string shapeStr(const anton::util::TorusShape& s) {
  return std::to_string(s.extent(0)) + "x" + std::to_string(s.extent(1)) +
         "x" + std::to_string(s.extent(2));
}

std::string findingLine(const std::string& plan, const verify::Violation& v) {
  std::ostringstream os;
  os << "{\"kind\":"
     << JsonReporter::quoted(v.severity == verify::Severity::kError
                                 ? "violation"
                                 : "lint")
     << ",\"plan\":" << JsonReporter::quoted(plan)
     << ",\"check\":" << JsonReporter::quoted(v.check)
     << ",\"site\":" << JsonReporter::quoted(v.site) << ",\"node\":" << v.node
     << ",\"counter\":" << v.counterId << ",\"pattern\":" << v.patternId
     << ",\"count\":" << v.count
     << ",\"detail\":" << JsonReporter::quoted(v.detail) << "}";
  return os.str();
}

verify::VerifyResult runPlan(Emitter& em, Totals& t,
                             const verify::CommPlan& plan,
                             const verify::VerifyOptions& opts = {}) {
  verify::VerifyResult r = verify::verifyPlan(plan, opts);
  ++t.plans;
  t.violations += int(r.violations.size());
  t.lints += int(r.lints.size());
  // Every shipped counted wait now has a recovery story (ISSUE 5), so an
  // unarmed wait is a regression, not advice: it gates the exit code.
  for (const verify::Violation& v : r.lints)
    if (v.check == "recovery-coverage") ++t.recoveryLints;
  std::ostringstream os;
  os << "{\"kind\":\"plan\",\"plan\":" << JsonReporter::quoted(plan.name)
     << ",\"shape\":" << JsonReporter::quoted(shapeStr(plan.shape))
     << ",\"phases\":" << plan.phases.size()
     << ",\"writes\":" << plan.writes.size()
     << ",\"expectations\":" << plan.expectations.size()
     << ",\"multicasts\":" << plan.multicasts.size()
     << ",\"buffers\":" << r.buffersTotal
     << ",\"buffersChecked\":" << r.buffersChecked
     << ",\"sampled\":" << (r.sampled ? "true" : "false")
     << ",\"routesTraced\":" << r.routesTraced
     << ",\"events\":" << r.eventsModeled
     << ",\"multicastsRepaired\":" << r.multicastsRepaired
     << ",\"multicastsStalled\":" << r.multicastsStalled
     << ",\"violations\":" << r.violations.size()
     << ",\"lints\":" << r.lints.size()
     << ",\"ok\":" << (r.ok() ? "true" : "false") << "}";
  em.line(os.str());
  for (const verify::Violation& v : r.violations)
    em.line(findingLine(plan.name, v));
  for (const verify::Violation& v : r.lints)
    em.line(findingLine(plan.name, v));
  return r;
}

// --- seeded known-bad plans (each must fire its specific check) -------------

struct SelfTest {
  std::string name;
  std::string expect;  ///< check id that must appear among the violations
  verify::CommPlan plan;
  verify::VerifyOptions opts;
};

std::vector<SelfTest> selfTests() {
  std::vector<SelfTest> tests;
  {
    SelfTest t;  // wait expects 2 packets/round, plan delivers 1
    t.name = "bad-count";
    t.expect = "count";
    t.plan.name = t.name;
    t.plan.shape = {2, 1, 1};
    t.plan.addPhaseEdge("send", "recv");
    verify::PlannedWrite w;
    w.phase = "send";
    w.srcNode = 0;
    w.dst = {1, net::kSlice0};
    w.counterId = 0;
    t.plan.writes.push_back(w);
    verify::CounterExpectation e;
    e.site = "recv";
    e.phase = "recv";
    e.client = {1, net::kSlice0};
    e.counterId = 0;
    e.perRound = 2;
    e.recoveryArmed = true;
    t.plan.expectations.push_back(e);
    tests.push_back(std::move(t));
  }
  {
    SelfTest t;  // +x links all the way around a 4-ring: the walk re-enters
    t.name = "bad-multicast-cycle";
    t.expect = "multicast.cycle";
    t.plan.name = t.name;
    t.plan.shape = {4, 1, 1};
    verify::MulticastPlanEntry m;
    m.patternId = 7;
    m.srcNode = 0;
    int xPlus = net::RingLayout::adapterIndex(0, +1);
    for (int n = 0; n < 4; ++n)
      m.entries[n].linkMask = std::uint8_t(1u << xPlus);
    m.entries[2].clientMask = std::uint8_t(1u << net::kSlice0);
    m.declaredDests = {{2, net::kSlice0}};
    t.plan.multicasts.push_back(std::move(m));
    tests.push_back(std::move(t));
  }
  {
    SelfTest t;  // pattern id beyond the 256-entry per-node tables
    t.name = "bad-pattern-limit";
    t.expect = "multicast.pattern-limit";
    t.plan.name = t.name;
    t.plan.shape = {2, 1, 1};
    verify::MulticastPlanEntry m;
    m.patternId = net::kMulticastPatterns;  // first invalid id
    m.srcNode = 0;
    m.entries[0].clientMask = std::uint8_t(1u << net::kSlice0);
    m.declaredDests = {{0, net::kSlice0}};
    t.plan.multicasts.push_back(std::move(m));
    tests.push_back(std::move(t));
  }
  {
    SelfTest t;  // no return traffic: nothing orders the next-round write
    t.name = "bad-buffer-reuse";
    t.expect = "buffer-reuse";
    t.plan.name = t.name;
    t.plan.shape = {2, 1, 1};
    t.plan.addPhaseEdge("send", "recv");
    verify::PlannedWrite w;
    w.phase = "send";
    w.srcNode = 0;
    w.dst = {1, net::kSlice0};
    w.counterId = 0;
    t.plan.writes.push_back(w);
    verify::CounterExpectation e;
    e.site = "recv";
    e.phase = "recv";
    e.client = {1, net::kSlice0};
    e.counterId = 0;
    e.perRound = 1;
    e.recoveryArmed = true;
    t.plan.expectations.push_back(e);
    verify::BufferPlan b;
    b.name = "slot";
    b.client = {1, net::kSlice0};
    b.bytes = 32;
    b.freePhase = "recv";
    b.writers.push_back({0, "send"});
    t.plan.buffers.push_back(b);
    tests.push_back(std::move(t));
  }
  {
    SelfTest t;  // reroute around a mid-path outage resumes x after y: x,y,x
    t.name = "bad-route-dim-order";
    t.expect = "route.dim-order";
    t.plan.name = t.name;
    t.plan.shape = {4, 4, 1};
    t.plan.addPhaseEdge("send", "recv");
    verify::PlannedWrite w;
    w.phase = "send";
    w.srcNode = 0;
    w.dst = {anton::util::torusIndex({2, 1, 0}, t.plan.shape), net::kSlice0};
    w.counterId = 0;
    t.plan.writes.push_back(w);
    verify::CounterExpectation e;
    e.site = "recv";
    e.phase = "recv";
    e.client = w.dst;
    e.counterId = 0;
    e.perRound = 1;
    e.recoveryArmed = true;
    t.plan.expectations.push_back(e);
    t.opts.downLinks = {{1, 0, +1}};  // +x out of node (1,0,0) is down
    t.opts.routeIssuesAreErrors = true;
    tests.push_back(std::move(t));
  }
  {
    // The dim-ordered all-reduce with every receive slot single-buffered.
    // Legal under phase-atomic checking (each phase's wait "covers" the
    // frees), but the event graph sees that each node multicasts *before*
    // its wait, so nothing orders a peer's next-round send after this
    // node's read — the race the paper's parity double-buffering exists to
    // prevent.
    SelfTest t;
    t.name = "bad-single-buffered-allreduce";
    t.expect = "buffer-reuse";
    anton::sim::Simulator sim;
    net::Machine machine(sim, {2, 2, 2});
    core::DimOrderedAllReduce reduce(machine);
    t.plan.name = t.name;
    t.plan.shape = {2, 2, 2};
    reduce.appendPlan(t.plan, "");
    for (verify::BufferPlan& b : t.plan.buffers) b.copies = 1;
    tests.push_back(std::move(t));
  }
  {
    SelfTest t;  // both nodes wait for the packet the other sends afterwards
    t.name = "bad-deadlock";
    t.expect = "event.deadlock";
    t.plan.name = t.name;
    t.plan.shape = {2, 1, 1};
    t.plan.addPhase("exchange");
    for (int n = 0; n < 2; ++n) {
      verify::PlannedWrite w;
      w.phase = "exchange";
      w.srcNode = n;
      w.dst = {1 - n, net::kSlice0};
      w.counterId = 0;
      w.seq = 1;  // send issued after the wait below
      t.plan.writes.push_back(w);
      verify::CounterExpectation e;
      e.site = "exchange";
      e.phase = "exchange";
      e.client = {n, net::kSlice0};
      e.counterId = 0;
      e.perRound = 1;
      e.recoveryArmed = true;
      e.seq = 0;
      t.plan.expectations.push_back(e);
    }
    tests.push_back(std::move(t));
  }
  {
    SelfTest t;  // a counted wait with no recovery armed: a dropped packet
                 // would hang the phase forever (gating lint since ISSUE 5)
    t.name = "bad-recovery-unarmed";
    t.expect = "recovery-coverage";
    t.plan.name = t.name;
    t.plan.shape = {2, 1, 1};
    t.plan.addPhaseEdge("send", "recv");
    verify::PlannedWrite w;
    w.phase = "send";
    w.srcNode = 0;
    w.dst = {1, net::kSlice0};
    w.counterId = 0;
    t.plan.writes.push_back(w);
    verify::CounterExpectation e;
    e.site = "recv";
    e.phase = "recv";
    e.client = {1, net::kSlice0};
    e.counterId = 0;
    e.perRound = 1;
    e.recoveryArmed = false;
    t.plan.expectations.push_back(e);
    tests.push_back(std::move(t));
  }
  {
    SelfTest t;  // a down +x link severs a pure-x line fan-out: no reroute
    t.name = "bad-multicast-stalled";
    t.expect = "multicast.stalled";
    t.plan.name = t.name;
    t.plan.shape = {4, 1, 1};
    verify::MulticastPlanEntry m;
    m.patternId = 9;
    m.srcNode = 0;
    int xPlus = net::RingLayout::adapterIndex(0, +1);
    for (int n = 0; n < 3; ++n)
      m.entries[n].linkMask = std::uint8_t(1u << xPlus);
    for (int n = 1; n < 4; ++n) {
      m.entries[n].clientMask = std::uint8_t(1u << net::kSlice0);
      m.declaredDests.push_back({n, net::kSlice0});
    }
    t.plan.multicasts.push_back(std::move(m));
    t.opts.downLinks = {{0, 0, +1}};
    t.opts.routeIssuesAreErrors = true;
    tests.push_back(std::move(t));
  }
  return tests;
}

void runSelfTests(Emitter& em, Totals& t) {
  for (SelfTest& st : selfTests()) {
    verify::VerifyResult r = verify::verifyPlan(st.plan, st.opts);
    bool fired = false;
    for (const verify::Violation& v : r.violations)
      if (v.check == st.expect) fired = true;
    for (const verify::Violation& v : r.lints)  // gating lint selftests
      if (v.check == st.expect) fired = true;
    ++t.selftests;
    if (!fired) ++t.selftestFailures;
    std::ostringstream os;
    os << "{\"kind\":\"selftest\",\"plan\":" << JsonReporter::quoted(st.name)
       << ",\"expected\":" << JsonReporter::quoted(st.expect)
       << ",\"violations\":" << r.violations.size()
       << ",\"fired\":" << (fired ? "true" : "false") << "}";
    em.line(os.str());
  }
}

// --- --lookahead: static parallel-safety audit (ISSUE 8 tentpole) -----------

std::string lookaheadLine(const verify::LookaheadReport& r) {
  std::ostringstream os;
  os << "{\"kind\":\"lookahead\",\"plan\":" << JsonReporter::quoted(r.plan)
     << ",\"sharding\":" << JsonReporter::quoted(r.sharding)
     << ",\"shards\":" << r.numShards
     << ",\"safeLookaheadNs\":" << JsonReporter::number(r.safeLookaheadNs)
     << ",\"conflictDegree\":" << r.conflictDegree
     << ",\"crossShardEdges\":" << r.crossShardEdges
     << ",\"events\":" << r.eventsModeled << ",\"pairs\":" << r.pairs.size()
     << ",\"violations\":" << r.violations.size()
     << ",\"ok\":" << (r.ok() ? "true" : "false") << "}";
  return os.str();
}

void emitLookahead(Emitter& em, const verify::LookaheadReport& r) {
  em.line(lookaheadLine(r));
  for (const verify::Violation& v : r.violations)
    em.line(findingLine(r.plan, v));
  // The tightest (and every violating) edge per shard pair, capped so the
  // golden file stays reviewable; the cap only drops edges that are neither
  // violating nor pair-minimal beyond the 8 tightest.
  std::size_t cap = std::min<std::size_t>(8, r.criticalEdges.size());
  for (std::size_t i = 0; i < cap; ++i) {
    const verify::CriticalEdge& e = r.criticalEdges[i];
    std::ostringstream os;
    os << "{\"kind\":\"critical-edge\",\"plan\":"
       << JsonReporter::quoted(r.plan)
       << ",\"sharding\":" << JsonReporter::quoted(r.sharding)
       << ",\"from\":" << JsonReporter::quoted(e.from)
       << ",\"to\":" << JsonReporter::quoted(e.to)
       << ",\"fromShard\":" << e.fromShard << ",\"toShard\":" << e.toShard
       << ",\"latencyNs\":" << JsonReporter::number(e.latencyNs)
       << ",\"boundNs\":" << JsonReporter::number(e.boundNs)
       << ",\"violates\":" << (e.violates ? "true" : "false") << "}";
    em.line(os.str());
  }
}

/// Audit every registered golden plan under the shipped (safe) shardings,
/// then prove each unsafe-sharding diagnostic fires on a seeded case.
/// Output mirrors to VERIFY_lookahead.json (committed as a golden file).
int runLookahead() {
  Emitter em("VERIFY_lookahead.json");
  int audits = 0, violations = 0, selftests = 0, selftestFailures = 0;
  for (const std::string& name : tools::goldenPlanNames()) {
    verify::CommPlan plan = tools::buildNamedPlan(name);
    for (const verify::Sharding& sh :
         {verify::perNodeSharding(plan.shape),
          verify::slabSharding(plan.shape)}) {
      verify::LookaheadReport r = verify::analyzeLookahead(plan, sh);
      ++audits;
      violations += int(r.violations.size());
      emitLookahead(em, r);
    }
  }

  // Seeded-unsafe shardings: each must fire its distinct diagnostic.
  struct UnsafeCase {
    std::string name;
    std::string expect;
    std::string planName;
    verify::Sharding sharding;
  };
  std::vector<UnsafeCase> cases;
  {
    verify::CommPlan md = tools::buildNamedPlan("quickstart-md");
    cases.push_back({"unsafe-split-node", "lookahead.zero", "quickstart-md",
                     verify::splitNodeSharding(md.shape)});
    cases.push_back({"unsafe-zero-cycle", "lookahead.deadlock",
                     "quickstart-md", verify::splitNodeSharding(md.shape)});
  }
  {
    verify::CommPlan ar = tools::buildNamedPlan("table2-allreduce-2x2x2");
    cases.push_back({"unsafe-inflated-claim", "lookahead.slack",
                     "table2-allreduce-2x2x2",
                     verify::claimedLookaheadSharding(ar.shape, 10000.0)});
  }
  for (const UnsafeCase& c : cases) {
    verify::CommPlan plan = tools::buildNamedPlan(c.planName);
    verify::LookaheadReport r = verify::analyzeLookahead(plan, c.sharding);
    std::string edge;  // the named critical edge of the fired diagnostic
    bool fired = false;
    for (const verify::Violation& v : r.violations)
      if (v.check == c.expect) {
        fired = true;
        edge = v.detail;
        break;
      }
    ++selftests;
    if (!fired) ++selftestFailures;
    std::ostringstream os;
    os << "{\"kind\":\"selftest\",\"plan\":" << JsonReporter::quoted(c.name)
       << ",\"expected\":" << JsonReporter::quoted(c.expect)
       << ",\"violations\":" << r.violations.size()
       << ",\"fired\":" << (fired ? "true" : "false")
       << ",\"edge\":" << JsonReporter::quoted(edge) << "}";
    em.line(os.str());
  }

  bool ok = violations == 0 && selftestFailures == 0;
  std::ostringstream os;
  os << "{\"kind\":\"summary\",\"mode\":\"lookahead\",\"audits\":" << audits
     << ",\"violations\":" << violations << ",\"selftests\":" << selftests
     << ",\"selftestFailures\":" << selftestFailures
     << ",\"ok\":" << (ok ? "true" : "false") << "}";
  em.line(os.str());
  std::cerr << (ok ? "verify_plans --lookahead: OK"
                   : "verify_plans --lookahead: FAILED")
            << " (" << audits << " audits, " << violations << " violations, "
            << selftestFailures << "/" << selftests << " selftest failures)\n";
  return ok ? 0 : 1;
}

// --- --oracle: dynamic causal-order cross-check -----------------------------

struct OracleWorkload {
  std::string name;
  anton::util::TorusShape shape;
  sim::Time finalTime = 0;      ///< oracle attached
  sim::Time finalTimeBare = 0;  ///< oracle detached (must match)
  net::MachineStats stats;      ///< oracle attached
  net::MachineStats statsBare;  ///< oracle detached (must match)
  bool statsMatch = false;
  sim::CausalLog log;
};

/// The quickstart MD configuration, run live for two supersteps — the same
/// extraction the "quickstart-md" golden plan audits statically.
void runMdWorkload(OracleWorkload& w, bool withOracle) {
  anton::sim::Simulator simulator;
  net::Machine machine(simulator, w.shape);
  anton::md::SyntheticSystemParams sp;
  sp.targetAtoms = 1536;
  sp.seed = 2010;
  anton::md::AntonMdApp app(machine, anton::md::buildSyntheticSystem(sp),
                            tools::quickstartMdConfig());
  if (withOracle) {
    sim::ScopedCausalOracle oracle(w.log);
    app.runSteps(2);
    w.finalTime = simulator.now();
    w.stats = machine.stats();
  } else {
    app.runSteps(2);
    w.finalTimeBare = simulator.now();
    w.statsBare = machine.stats();
  }
}

/// Fig. 5-style counted-write pings on the paper's 8x8x8 torus at 1, 4 and
/// 12 hops (the probe helpers are the same ones behind the Fig. 5 bench).
void runPingWorkload(OracleWorkload& w, bool withOracle) {
  anton::sim::Simulator simulator;
  net::Machine machine(simulator, w.shape);
  std::optional<sim::ScopedCausalOracle> oracle;
  if (withOracle) oracle.emplace(w.log);
  for (anton::util::TorusCoord dst :
       {anton::util::TorusCoord{1, 0, 0}, anton::util::TorusCoord{2, 2, 0},
        anton::util::TorusCoord{4, 4, 4}})
    net::oneWayLatencyNs(machine, {0, net::kSlice0},
                         {anton::util::torusIndex(dst, w.shape), net::kSlice0},
                         64);
  (withOracle ? w.finalTime : w.finalTimeBare) = simulator.now();
  (withOracle ? w.stats : w.statsBare) = machine.stats();
}

std::string oracleLine(const OracleWorkload& w, const std::string& sharding,
                       const verify::OracleCheckResult& r) {
  std::ostringstream os;
  os << "{\"kind\":\"oracle\",\"workload\":" << JsonReporter::quoted(w.name)
     << ",\"sharding\":" << JsonReporter::quoted(sharding)
     << ",\"records\":" << r.recordsSeen
     << ",\"linkEdges\":" << r.linkEdgesChecked
     << ",\"crossShardEdges\":" << r.crossShardEdges
     << ",\"minObservedNs\":" << JsonReporter::number(r.minObservedNs)
     << ",\"scheduleUnperturbed\":"
     << (w.finalTime == w.finalTimeBare && w.statsMatch ? "true" : "false")
     << ",\"violations\":" << r.violations.size()
     << ",\"ok\":" << (r.ok() ? "true" : "false") << "}";
  return os.str();
}

/// Record a causal trace of the live quickstart MD and Fig. 5 ping shapes,
/// check every observed cross-shard link edge against the same bounds the
/// static analyzer proves, and confirm the oracle knob did not perturb the
/// schedule (final clock identical with the knob off).
int runOracle() {
  Emitter em("VERIFY_oracle.json");
  int violations = 0, selftests = 0, selftestFailures = 0;
  bool schedulesMatch = true;

  std::vector<OracleWorkload> workloads(2);
  workloads[0].name = "quickstart-md";
  workloads[0].shape = {4, 4, 4};
  workloads[1].name = "fig5-ping";
  workloads[1].shape = {8, 8, 8};
  for (OracleWorkload& w : workloads) {
    if (w.name == "quickstart-md") {
      runMdWorkload(w, true);
      runMdWorkload(w, false);
    } else {
      runPingWorkload(w, true);
      runPingWorkload(w, false);
    }
    w.statsMatch = w.stats == w.statsBare;
    schedulesMatch =
        schedulesMatch && w.finalTime == w.finalTimeBare && w.statsMatch;
    for (const verify::Sharding& sh :
         {verify::perNodeSharding(w.shape), verify::slabSharding(w.shape)}) {
      verify::OracleCheckResult r =
          verify::checkCausalLog(w.log.records(), w.shape, sh);
      violations += int(r.violations.size());
      em.line(oracleLine(w, sh.name, r));
      for (const verify::Violation& v : r.violations)
        em.line(findingLine(w.name, v));
    }
  }

  // Seeded-unsafe claim: a lookahead nobody can guarantee (1 ms) must make
  // the oracle flag the very first observed link crossing.
  {
    const OracleWorkload& w = workloads[0];
    verify::Sharding inflated =
        verify::claimedLookaheadSharding(w.shape, 1.0e6);
    verify::OracleCheckResult r =
        verify::checkCausalLog(w.log.records(), w.shape, inflated);
    bool fired = false;
    for (const verify::Violation& v : r.violations)
      if (v.check == "oracle.lookahead") fired = true;
    ++selftests;
    if (!fired) ++selftestFailures;
    std::ostringstream os;
    os << "{\"kind\":\"selftest\",\"plan\":"
       << JsonReporter::quoted("oracle-inflated-claim")
       << ",\"expected\":" << JsonReporter::quoted("oracle.lookahead")
       << ",\"violations\":" << r.violations.size()
       << ",\"fired\":" << (fired ? "true" : "false") << "}";
    em.line(os.str());
  }

  bool ok = violations == 0 && selftestFailures == 0 && schedulesMatch;
  std::ostringstream os;
  os << "{\"kind\":\"summary\",\"mode\":\"oracle\",\"workloads\":"
     << workloads.size() << ",\"violations\":" << violations
     << ",\"selftests\":" << selftests
     << ",\"selftestFailures\":" << selftestFailures
     << ",\"schedulesMatch\":" << (schedulesMatch ? "true" : "false")
     << ",\"ok\":" << (ok ? "true" : "false") << "}";
  em.line(os.str());
  std::cerr << (ok ? "verify_plans --oracle: OK"
                   : "verify_plans --oracle: FAILED")
            << " (" << workloads.size() << " workloads, " << violations
            << " violations, " << selftestFailures << "/" << selftests
            << " selftest failures, schedules "
            << (schedulesMatch ? "unperturbed" : "PERTURBED") << ")\n";
  return ok ? 0 : 1;
}

// --- --diff / --dump-plans ---------------------------------------------------

verify::CommPlan loadPlanArg(const std::string& arg) {
  if (std::filesystem::exists(arg)) {
    std::ifstream in(arg);
    if (!in) throw std::runtime_error("cannot read " + arg);
    std::ostringstream buf;
    buf << in.rdbuf();
    return verify::planFromJson(buf.str());
  }
  return tools::buildNamedPlan(arg);
}

int runDiff(const std::string& a, const std::string& b) {
  verify::CommPlan pa = loadPlanArg(a);
  verify::CommPlan pb = loadPlanArg(b);
  verify::PlanDelta delta = verify::diffPlans(pa, pb);
  for (const verify::PlanDeltaEntry& e : delta.entries)
    std::cout << e.category << " | " << e.site << " | " << e.detail << "\n";
  if (delta.identical()) {
    std::cerr << "verify_plans --diff: plans are structurally identical\n";
    return 0;
  }
  std::cerr << "verify_plans --diff: " << delta.entries.size()
            << " structural difference(s) between '" << a << "' and '" << b
            << "'\n";
  return 1;
}

/// --plan-keys: one "<name> <planKeyHex>" line per shipped golden plan.
/// The hex is verify::planKey over the canonical snapshot bytes — the same
/// stable identity the serve cache folds into its job keys, pinned as
/// constants by golden_plan_test.
int runPlanKeys() {
  for (const std::string& name : tools::goldenPlanNames())
    std::cout << name << " "
              << verify::planKeyHex(tools::buildNamedPlan(name)) << "\n";
  return 0;
}

int runDump(const std::string& dir) {
  std::filesystem::create_directories(dir);
  for (const std::string& name : tools::goldenPlanNames()) {
    std::filesystem::path path =
        std::filesystem::path(dir) / (name + ".json");
    std::ofstream out(path);
    if (!out) throw std::runtime_error("cannot write " + path.string());
    out << verify::planToJson(tools::buildNamedPlan(name));
    std::cerr << "wrote " << path.string() << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool fast = false, selftestOnly = false;
  try {
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--diff") == 0) {
        if (i + 2 >= argc) {
          std::cerr << "usage: verify_plans --diff <plan-or-file> "
                       "<plan-or-file>\n";
          return 2;
        }
        return runDiff(argv[i + 1], argv[i + 2]);
      }
      if (std::strcmp(argv[i], "--dump-plans") == 0) {
        if (i + 1 >= argc) {
          std::cerr << "usage: verify_plans --dump-plans <dir>\n";
          return 2;
        }
        return runDump(argv[i + 1]);
      }
      if (std::strcmp(argv[i], "--plan-keys") == 0) return runPlanKeys();
      if (std::strcmp(argv[i], "--lookahead") == 0) return runLookahead();
      if (std::strcmp(argv[i], "--oracle") == 0) return runOracle();
      if (std::strcmp(argv[i], "--fast") == 0) {
        fast = true;
      } else if (std::strcmp(argv[i], "--selftest-only") == 0) {
        selftestOnly = true;
      } else {
        std::cerr << "usage: verify_plans [--fast] [--selftest-only] "
                     "[--dump-plans DIR] [--diff A B] [--plan-keys] "
                     "[--lookahead] [--oracle]\n";
        return 2;
      }
    }
    Emitter em;
    Totals t;
    if (!selftestOnly) {
      runPlan(em, t, tools::buildNamedPlan("quickstart-md"));
      runPlan(em, t, tools::buildNamedPlan("fig5-ping"));
      {
        // The same topology audited in degraded mode: a down +x link out of
        // node 0 exercises the reroute path (lints, not errors, so the
        // shipped plan stays green while the reroutes are reported).
        verify::CommPlan p = tools::buildNamedPlan("fig5-ping");
        p.name = "fig5-ping-degraded";
        verify::VerifyOptions opts;
        opts.downLinks = {{0, 0, +1}};
        opts.routeIssuesAreErrors = false;
        runPlan(em, t, p, opts);
      }
      for (const char* shape :
           {"4x4x4", "8x2x8", "8x8x4", "8x8x8", "8x8x16"})
        runPlan(em, t, tools::buildNamedPlan(std::string("table2-allreduce-") +
                                             shape));
      {
        // Degraded audit of the line fan-outs: an on-axis outage cannot be
        // rerouted around inside a 1-D line, so the affected trees are
        // reported as stalls (informational here; the live machine would
        // wait out the outage).
        verify::CommPlan p = tools::buildNamedPlan("table2-allreduce-4x4x4");
        p.name = "table2-allreduce-4x4x4-degraded";
        verify::VerifyOptions opts;
        opts.downLinks = {{0, 0, +1}};
        opts.routeIssuesAreErrors = false;
        runPlan(em, t, p, opts);
      }
      {
        // Degraded audit of the MD step: the position-import and flush
        // trees span all three dimensions, so the repair pass re-covers
        // every lost destination with rerouted unicast paths.
        verify::CommPlan p = tools::buildNamedPlan("quickstart-md");
        p.name = "quickstart-md-degraded";
        verify::VerifyOptions opts;
        opts.downLinks = {{0, 0, +1}};
        opts.routeIssuesAreErrors = false;
        runPlan(em, t, p, opts);
      }
      // Degenerate torus with a traffic-carrying extent-1 dimension: pins
      // the reduced-offset half-shell dedup (ISSUE 5 satellite).
      runPlan(em, t, tools::buildNamedPlan("md-4x4x1"));
      runPlan(em, t, tools::buildNamedPlan("fft-pair-2x2x2"));
      runPlan(em, t, tools::buildNamedPlan("cluster-allreduce-512"));
      if (!fast) runPlan(em, t, tools::buildNamedPlan("table3-md-8x8x8"));
    }
    runSelfTests(em, t);

    bool ok = t.violations == 0 && t.recoveryLints == 0 &&
              t.selftestFailures == 0;
    std::ostringstream os;
    os << "{\"kind\":\"summary\",\"plans\":" << t.plans
       << ",\"violations\":" << t.violations << ",\"lints\":" << t.lints
       << ",\"recoveryLints\":" << t.recoveryLints
       << ",\"selftests\":" << t.selftests
       << ",\"selftestFailures\":" << t.selftestFailures
       << ",\"ok\":" << (ok ? "true" : "false") << "}";
    em.line(os.str());
    std::cerr << (ok ? "verify_plans: OK" : "verify_plans: FAILED") << " ("
              << t.plans << " plans, " << t.violations << " violations, "
              << t.lints << " lints of which " << t.recoveryLints
              << " recovery-coverage (gating), " << t.selftestFailures << "/"
              << t.selftests << " selftest failures)\n";
    return ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "verify_plans: " << e.what() << "\n";
    return 2;
  }
}
