// verify_plans: static communication-plan verifier CLI (ISSUE 3 tentpole).
//
// Extracts the static communication graph of each shipped configuration —
// the quickstart MD run, the Fig. 5 ping topology, the Table 2 all-reduce
// tori, the Table 3 512-node MD system, and the cluster-baseline all-reduce
// — WITHOUT running the simulator, and checks count consistency, multicast
// well-formedness, buffer-reuse safety, route dimension order (healthy and
// degraded), and recovery coverage (src/verify/checks.hpp).
//
// Output is strict JSON lines on stdout, mirrored to VERIFY_plans.json:
//   {"kind":"plan", ...}       one per verified plan
//   {"kind":"violation", ...}  each Severity::kError finding
//   {"kind":"lint", ...}       each Severity::kLint finding
//   {"kind":"selftest", ...}   each seeded known-bad plan (must fire)
//   {"kind":"summary", ...}    totals; "ok" decides the exit code
//
// Exit status: 0 when every shipped plan is violation-free and every seeded
// bad plan produced its expected violation; 1 otherwise.
//
// Flags: --fast (skip the 512-node Table 3 extraction),
//        --selftest-only (run only the seeded bad plans).
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "cluster/collectives.hpp"
#include "core/allreduce.hpp"
#include "md/anton_app.hpp"
#include "verify/checks.hpp"

using anton::bench::JsonReporter;

namespace {

namespace verify = anton::verify;
namespace md = anton::md;
namespace net = anton::net;
namespace core = anton::core;

struct Emitter {
  JsonReporter file{"verify_plans", "VERIFY_plans.json"};
  void line(const std::string& l) {
    std::cout << l << '\n';
    file.raw(l);
  }
};

struct Totals {
  int plans = 0;
  int violations = 0;
  int lints = 0;
  int selftests = 0;
  int selftestFailures = 0;
};

std::string shapeStr(const anton::util::TorusShape& s) {
  return std::to_string(s.extent(0)) + "x" + std::to_string(s.extent(1)) +
         "x" + std::to_string(s.extent(2));
}

std::string findingLine(const std::string& plan, const verify::Violation& v) {
  std::ostringstream os;
  os << "{\"kind\":"
     << JsonReporter::quoted(v.severity == verify::Severity::kError
                                 ? "violation"
                                 : "lint")
     << ",\"plan\":" << JsonReporter::quoted(plan)
     << ",\"check\":" << JsonReporter::quoted(v.check)
     << ",\"site\":" << JsonReporter::quoted(v.site) << ",\"node\":" << v.node
     << ",\"counter\":" << v.counterId << ",\"pattern\":" << v.patternId
     << ",\"count\":" << v.count
     << ",\"detail\":" << JsonReporter::quoted(v.detail) << "}";
  return os.str();
}

verify::VerifyResult runPlan(Emitter& em, Totals& t,
                             const verify::CommPlan& plan,
                             const verify::VerifyOptions& opts = {}) {
  verify::VerifyResult r = verify::verifyPlan(plan, opts);
  ++t.plans;
  t.violations += int(r.violations.size());
  t.lints += int(r.lints.size());
  std::ostringstream os;
  os << "{\"kind\":\"plan\",\"plan\":" << JsonReporter::quoted(plan.name)
     << ",\"shape\":" << JsonReporter::quoted(shapeStr(plan.shape))
     << ",\"phases\":" << plan.phases.size()
     << ",\"writes\":" << plan.writes.size()
     << ",\"expectations\":" << plan.expectations.size()
     << ",\"multicasts\":" << plan.multicasts.size()
     << ",\"buffers\":" << r.buffersTotal
     << ",\"buffersChecked\":" << r.buffersChecked
     << ",\"sampled\":" << (r.sampled ? "true" : "false")
     << ",\"routesTraced\":" << r.routesTraced
     << ",\"violations\":" << r.violations.size()
     << ",\"lints\":" << r.lints.size()
     << ",\"ok\":" << (r.ok() ? "true" : "false") << "}";
  em.line(os.str());
  for (const verify::Violation& v : r.violations)
    em.line(findingLine(plan.name, v));
  for (const verify::Violation& v : r.lints)
    em.line(findingLine(plan.name, v));
  return r;
}

// --- shipped plans -----------------------------------------------------------

verify::CommPlan mdPlan(const std::string& name, anton::util::TorusShape shape,
                        int atoms, md::AntonMdConfig cfg) {
  anton::sim::Simulator sim;
  net::Machine machine(sim, shape);
  md::SyntheticSystemParams sp;
  sp.targetAtoms = atoms;
  sp.seed = 2010;
  md::AntonMdApp app(machine, md::buildSyntheticSystem(sp), cfg);
  verify::CommPlan p = app.extractCommPlan();
  p.name = name;
  return p;
}

md::AntonMdConfig quickstartConfig() {
  md::AntonMdConfig cfg;
  cfg.force.cutoff = 2.2;
  cfg.ewald.grid = 16;
  cfg.thermostatTau = 0.05;
  cfg.homeBoxMarginFrac = 0.10;
  cfg.recoveryTimeoutUs = 5000;  // arm RecoverableCountedWrite on the waits
  cfg.recoveryMaxResends = 6;
  return cfg;
}

md::AntonMdConfig table3Config() {
  md::AntonMdConfig cfg = quickstartConfig();
  cfg.force.cutoff = 2.6;
  cfg.ewald.grid = 32;
  cfg.homeBoxMarginFrac = 0.08;  // Table 3 bench configuration
  cfg.migrationInterval = 100;
  return cfg;
}

verify::CommPlan allReducePlan(anton::util::TorusShape shape) {
  anton::sim::Simulator sim;
  net::Machine machine(sim, shape);
  core::DimOrderedAllReduce reduce(machine);
  verify::CommPlan p;
  p.name = "table2-allreduce-" + shapeStr(shape);
  p.shape = shape;
  reduce.appendPlan(p, "");
  return p;
}

verify::CommPlan clusterPlan(int numNodes) {
  verify::CommPlan p;
  p.name = "cluster-allreduce-" + std::to_string(numNodes);
  anton::cluster::appendAllReducePlan(p, numNodes, "");
  return p;
}

/// Fig. 5 topology: ping-pong between node 0 and corners at increasing hop
/// distance on the 512-node torus. The pong is what makes the receive slot
/// reusable without a barrier, so the plan models both directions.
verify::CommPlan fig5Plan() {
  verify::CommPlan p;
  p.name = "fig5-ping";
  p.shape = {8, 8, 8};
  p.addPhaseEdge("ping.send", "ping.recv");
  p.addPhaseEdge("ping.recv", "ping.ack");
  const anton::util::TorusCoord corners[] = {
      {1, 0, 0}, {2, 0, 0}, {4, 0, 0}, {4, 4, 0}, {4, 4, 4}};
  verify::CounterExpectation ack;
  ack.site = "ping.ack";
  ack.phase = "ping.ack";
  ack.client = {0, net::kSlice0};
  ack.counterId = 1;
  verify::BufferPlan ackBuf;
  ackBuf.name = "ping.ackslots";
  ackBuf.client = {0, net::kSlice0};
  ackBuf.bytes = std::uint32_t(std::size(corners)) * 32u;
  ackBuf.freePhase = "ping.ack";
  for (std::size_t i = 0; i < std::size(corners); ++i) {
    int dst = anton::util::torusIndex(corners[i], p.shape);
    verify::PlannedWrite ping;
    ping.phase = "ping.send";
    ping.srcNode = 0;
    ping.dst = {dst, net::kSlice0};
    ping.counterId = 0;
    p.writes.push_back(ping);

    verify::CounterExpectation e;
    e.site = "ping.recv";
    e.phase = "ping.recv";
    e.client = {dst, net::kSlice0};
    e.counterId = 0;
    e.perRound = 1;
    e.bySource[0] = 1;
    e.recoveryArmed = true;  // the fault bench arms the ping write
    p.expectations.push_back(std::move(e));

    verify::BufferPlan b;
    b.name = "ping.slot." + std::to_string(dst);
    b.client = {dst, net::kSlice0};
    b.bytes = 32;
    b.freePhase = "ping.recv";
    b.writers.push_back({0, "ping.send"});
    p.buffers.push_back(std::move(b));

    verify::PlannedWrite pong;
    pong.phase = "ping.recv";
    pong.srcNode = dst;
    pong.dst = {0, net::kSlice0};
    pong.counterId = 1;
    p.writes.push_back(pong);
    ack.perRound += 1;
    ack.bySource[dst] = 1;
    ackBuf.writers.push_back({dst, "ping.recv"});
  }
  ack.recoveryArmed = true;
  p.expectations.push_back(std::move(ack));
  p.buffers.push_back(std::move(ackBuf));
  return p;
}

// --- seeded known-bad plans (each must fire its specific check) -------------

struct SelfTest {
  std::string name;
  std::string expect;  ///< check id that must appear among the violations
  verify::CommPlan plan;
  verify::VerifyOptions opts;
};

std::vector<SelfTest> selfTests() {
  std::vector<SelfTest> tests;
  {
    SelfTest t;  // wait expects 2 packets/round, plan delivers 1
    t.name = "bad-count";
    t.expect = "count";
    t.plan.name = t.name;
    t.plan.shape = {2, 1, 1};
    t.plan.addPhaseEdge("send", "recv");
    verify::PlannedWrite w;
    w.phase = "send";
    w.srcNode = 0;
    w.dst = {1, net::kSlice0};
    w.counterId = 0;
    t.plan.writes.push_back(w);
    verify::CounterExpectation e;
    e.site = "recv";
    e.phase = "recv";
    e.client = {1, net::kSlice0};
    e.counterId = 0;
    e.perRound = 2;
    e.recoveryArmed = true;
    t.plan.expectations.push_back(e);
    tests.push_back(std::move(t));
  }
  {
    SelfTest t;  // +x links all the way around a 4-ring: the walk re-enters
    t.name = "bad-multicast-cycle";
    t.expect = "multicast.cycle";
    t.plan.name = t.name;
    t.plan.shape = {4, 1, 1};
    verify::MulticastPlanEntry m;
    m.patternId = 7;
    m.srcNode = 0;
    int xPlus = net::RingLayout::adapterIndex(0, +1);
    for (int n = 0; n < 4; ++n)
      m.entries[n].linkMask = std::uint8_t(1u << xPlus);
    m.entries[2].clientMask = std::uint8_t(1u << net::kSlice0);
    m.declaredDests = {{2, net::kSlice0}};
    t.plan.multicasts.push_back(std::move(m));
    tests.push_back(std::move(t));
  }
  {
    SelfTest t;  // pattern id beyond the 256-entry per-node tables
    t.name = "bad-pattern-limit";
    t.expect = "multicast.pattern-limit";
    t.plan.name = t.name;
    t.plan.shape = {2, 1, 1};
    verify::MulticastPlanEntry m;
    m.patternId = net::kMulticastPatterns;  // first invalid id
    m.srcNode = 0;
    m.entries[0].clientMask = std::uint8_t(1u << net::kSlice0);
    m.declaredDests = {{0, net::kSlice0}};
    t.plan.multicasts.push_back(std::move(m));
    tests.push_back(std::move(t));
  }
  {
    SelfTest t;  // no return traffic: nothing orders the next-round write
    t.name = "bad-buffer-reuse";
    t.expect = "buffer-reuse";
    t.plan.name = t.name;
    t.plan.shape = {2, 1, 1};
    t.plan.addPhaseEdge("send", "recv");
    verify::PlannedWrite w;
    w.phase = "send";
    w.srcNode = 0;
    w.dst = {1, net::kSlice0};
    w.counterId = 0;
    t.plan.writes.push_back(w);
    verify::CounterExpectation e;
    e.site = "recv";
    e.phase = "recv";
    e.client = {1, net::kSlice0};
    e.counterId = 0;
    e.perRound = 1;
    e.recoveryArmed = true;
    t.plan.expectations.push_back(e);
    verify::BufferPlan b;
    b.name = "slot";
    b.client = {1, net::kSlice0};
    b.bytes = 32;
    b.freePhase = "recv";
    b.writers.push_back({0, "send"});
    t.plan.buffers.push_back(b);
    tests.push_back(std::move(t));
  }
  {
    SelfTest t;  // reroute around a mid-path outage resumes x after y: x,y,x
    t.name = "bad-route-dim-order";
    t.expect = "route.dim-order";
    t.plan.name = t.name;
    t.plan.shape = {4, 4, 1};
    t.plan.addPhaseEdge("send", "recv");
    verify::PlannedWrite w;
    w.phase = "send";
    w.srcNode = 0;
    w.dst = {anton::util::torusIndex({2, 1, 0}, t.plan.shape), net::kSlice0};
    w.counterId = 0;
    t.plan.writes.push_back(w);
    verify::CounterExpectation e;
    e.site = "recv";
    e.phase = "recv";
    e.client = w.dst;
    e.counterId = 0;
    e.perRound = 1;
    e.recoveryArmed = true;
    t.plan.expectations.push_back(e);
    t.opts.downLinks = {{1, 0, +1}};  // +x out of node (1,0,0) is down
    t.opts.routeIssuesAreErrors = true;
    tests.push_back(std::move(t));
  }
  return tests;
}

void runSelfTests(Emitter& em, Totals& t) {
  for (SelfTest& st : selfTests()) {
    verify::VerifyResult r = verify::verifyPlan(st.plan, st.opts);
    bool fired = false;
    for (const verify::Violation& v : r.violations)
      if (v.check == st.expect) fired = true;
    ++t.selftests;
    if (!fired) ++t.selftestFailures;
    std::ostringstream os;
    os << "{\"kind\":\"selftest\",\"plan\":" << JsonReporter::quoted(st.name)
       << ",\"expected\":" << JsonReporter::quoted(st.expect)
       << ",\"violations\":" << r.violations.size()
       << ",\"fired\":" << (fired ? "true" : "false") << "}";
    em.line(os.str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool fast = false, selftestOnly = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) fast = true;
    else if (std::strcmp(argv[i], "--selftest-only") == 0) selftestOnly = true;
    else {
      std::cerr << "usage: verify_plans [--fast] [--selftest-only]\n";
      return 2;
    }
  }
  try {
    Emitter em;
    Totals t;
    if (!selftestOnly) {
      runPlan(em, t, mdPlan("quickstart-md", {4, 4, 4}, 1536,
                            quickstartConfig()));
      runPlan(em, t, fig5Plan());
      {
        // The same topology audited in degraded mode: a down +x link out of
        // node 0 exercises the reroute path (lints, not errors, so the
        // shipped plan stays green while the reroutes are reported).
        verify::CommPlan p = fig5Plan();
        p.name = "fig5-ping-degraded";
        verify::VerifyOptions opts;
        opts.downLinks = {{0, 0, +1}};
        opts.routeIssuesAreErrors = false;
        runPlan(em, t, p, opts);
      }
      for (anton::util::TorusShape shape :
           {anton::util::TorusShape{4, 4, 4}, {8, 2, 8}, {8, 8, 4}, {8, 8, 8},
            {8, 8, 16}})
        runPlan(em, t, allReducePlan(shape));
      runPlan(em, t, clusterPlan(512));
      if (!fast)
        runPlan(em, t, mdPlan("table3-md-8x8x8", {8, 8, 8}, 23558,
                              table3Config()));
    }
    runSelfTests(em, t);

    bool ok = t.violations == 0 && t.selftestFailures == 0;
    std::ostringstream os;
    os << "{\"kind\":\"summary\",\"plans\":" << t.plans
       << ",\"violations\":" << t.violations << ",\"lints\":" << t.lints
       << ",\"selftests\":" << t.selftests
       << ",\"selftestFailures\":" << t.selftestFailures
       << ",\"ok\":" << (ok ? "true" : "false") << "}";
    em.line(os.str());
    std::cerr << (ok ? "verify_plans: OK" : "verify_plans: FAILED") << " ("
              << t.plans << " plans, " << t.violations << " violations, "
              << t.lints << " lints, " << t.selftestFailures << "/"
              << t.selftests << " selftest failures)\n";
    return ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "verify_plans: " << e.what() << "\n";
    return 2;
  }
}
