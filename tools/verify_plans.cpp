// verify_plans: static communication-plan verifier CLI (ISSUE 3 tentpole,
// deepened by ISSUE 4's event-granular happens-before checks).
//
// Extracts the static communication graph of each shipped configuration —
// the quickstart MD run, the Fig. 5 ping topology, the Table 2 all-reduce
// tori, the Table 3 512-node MD system, the FFT pair, and the
// cluster-baseline all-reduce — WITHOUT running the simulator, and checks
// count consistency, multicast well-formedness (healthy and under declared
// down links, with tree repair), event-level buffer-reuse safety, static
// deadlock freedom, route dimension order, and recovery coverage
// (src/verify/checks.hpp).
//
// Output is strict JSON lines on stdout, mirrored to VERIFY_plans.json:
//   {"kind":"plan", ...}       one per verified plan
//   {"kind":"violation", ...}  each Severity::kError finding
//   {"kind":"lint", ...}       each Severity::kLint finding
//   {"kind":"selftest", ...}   each seeded known-bad plan (must fire)
//   {"kind":"summary", ...}    totals; "ok" decides the exit code
//
// Exit status: 0 when every shipped plan is violation-free AND free of
// recovery-coverage lints (every counted wait must have a recovery story,
// ISSUE 5), and every seeded bad plan produced its expected finding; 1
// otherwise. Other lints stay advisory.
//
// Modes and flags:
//   --fast              skip the 512-node Table 3 extraction
//   --selftest-only     run only the seeded bad plans
//   --dump-plans DIR    write each golden plan's JSON snapshot into DIR
//   --diff A B          structural plan delta. A and B are plan names
//                       (tools/plan_registry.hpp) or snapshot files; prints
//                       one line per difference. Exit 0 when identical, 1
//                       when the plans differ, 2 on error.
//   --lookahead         static parallel-safety audit (ISSUE 8): prove every
//                       cross-shard happens-before edge of each golden plan
//                       meets the shard pair's lookahead bound under the
//                       shipped shardings, and that each seeded-unsafe
//                       sharding fires its diagnostic. Output mirrors to
//                       VERIFY_lookahead.json (committed golden file).
//   --oracle            dynamic causal-order cross-check: record a causal
//                       trace of the live quickstart MD and Fig. 5 ping
//                       shapes and assert every observed cross-shard link
//                       edge respects the statically claimed bound; then
//                       re-run both workloads on the sharded kernel itself
//                       (per-node and slab-x, 2 workers, budget from the
//                       committed contract) and require the live parallel
//                       schedule to pass the same causal check AND stay
//                       bit-identical to serial; output mirrors to
//                       VERIFY_oracle.json.
//   --timing            static critical-path & link-occupancy audit (ISSUE
//                       9): price every golden plan's happens-before graph
//                       with the calibrated latency model — critical-path
//                       lower bound with the bottleneck named event-by-
//                       event, per-link x per-phase occupancy hotspots with
//                       the timing.contention check, and degraded-mode
//                       inflation — plus seeded-bad plans that must fire
//                       timing.contention and timing.degraded-blowup.
//                       Output mirrors to VERIFY_timing.json (committed
//                       golden file, like VERIFY_lookahead.json).
//   --timing-oracle     measured-latency oracle: run the live ping / MD /
//                       all-reduce schedules (causal-log attribution
//                       attached, schedule provably unperturbed) and pin
//                       measured completion >= static lower bound with the
//                       measured/bound slack inside each family's pinned
//                       envelope; a seeded inflated bound must be refuted.
//                       Output mirrors to VERIFY_timing_oracle.json.
//   --update-goldens [DIR]  regenerate the golden plan snapshots AND the
//                       committed verify reports (VERIFY_lookahead.json,
//                       VERIFY_timing.json) in DIR (default
//                       tests/golden_plans) in one step.
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/allreduce.hpp"
#include "net/latency.hpp"
#include "net/probe.hpp"
#include "plan_registry.hpp"
#include "sim/causal_log.hpp"
#include "sim/simulator.hpp"
#include "verify/checks.hpp"
#include "verify/lookahead.hpp"
#include "verify/shard_contract.hpp"
#include "verify/snapshot.hpp"
#include "verify/timing.hpp"

using anton::bench::JsonReporter;

namespace {

namespace verify = anton::verify;
namespace net = anton::net;
namespace core = anton::core;
namespace sim = anton::sim;
namespace tools = anton::tools;

struct Emitter {
  JsonReporter file;
  explicit Emitter(const std::string& path = "VERIFY_plans.json")
      : file("verify_plans", path) {}
  void line(const std::string& l) {
    std::cout << l << '\n';
    file.raw(l);
  }
};

struct Totals {
  int plans = 0;
  int violations = 0;
  int lints = 0;
  int recoveryLints = 0;  ///< recovery-coverage lints gate like violations
  int selftests = 0;
  int selftestFailures = 0;
};

std::string shapeStr(const anton::util::TorusShape& s) {
  return std::to_string(s.extent(0)) + "x" + std::to_string(s.extent(1)) +
         "x" + std::to_string(s.extent(2));
}

std::string findingLine(const std::string& plan, const verify::Violation& v) {
  std::ostringstream os;
  os << "{\"kind\":"
     << JsonReporter::quoted(v.severity == verify::Severity::kError
                                 ? "violation"
                                 : "lint")
     << ",\"plan\":" << JsonReporter::quoted(plan)
     << ",\"check\":" << JsonReporter::quoted(v.check)
     << ",\"site\":" << JsonReporter::quoted(v.site) << ",\"node\":" << v.node
     << ",\"counter\":" << v.counterId << ",\"pattern\":" << v.patternId
     << ",\"count\":" << v.count
     << ",\"detail\":" << JsonReporter::quoted(v.detail) << "}";
  return os.str();
}

verify::VerifyResult runPlan(Emitter& em, Totals& t,
                             const verify::CommPlan& plan,
                             const verify::VerifyOptions& opts = {}) {
  verify::VerifyResult r = verify::verifyPlan(plan, opts);
  ++t.plans;
  t.violations += int(r.violations.size());
  t.lints += int(r.lints.size());
  // Every shipped counted wait now has a recovery story (ISSUE 5), so an
  // unarmed wait is a regression, not advice: it gates the exit code.
  for (const verify::Violation& v : r.lints)
    if (v.check == "recovery-coverage") ++t.recoveryLints;
  std::ostringstream os;
  os << "{\"kind\":\"plan\",\"plan\":" << JsonReporter::quoted(plan.name)
     << ",\"shape\":" << JsonReporter::quoted(shapeStr(plan.shape))
     << ",\"phases\":" << plan.phases.size()
     << ",\"writes\":" << plan.writes.size()
     << ",\"expectations\":" << plan.expectations.size()
     << ",\"multicasts\":" << plan.multicasts.size()
     << ",\"buffers\":" << r.buffersTotal
     << ",\"buffersChecked\":" << r.buffersChecked
     << ",\"sampled\":" << (r.sampled ? "true" : "false")
     << ",\"routesTraced\":" << r.routesTraced
     << ",\"events\":" << r.eventsModeled
     << ",\"multicastsRepaired\":" << r.multicastsRepaired
     << ",\"multicastsStalled\":" << r.multicastsStalled
     << ",\"violations\":" << r.violations.size()
     << ",\"lints\":" << r.lints.size()
     << ",\"ok\":" << (r.ok() ? "true" : "false") << "}";
  em.line(os.str());
  for (const verify::Violation& v : r.violations)
    em.line(findingLine(plan.name, v));
  for (const verify::Violation& v : r.lints)
    em.line(findingLine(plan.name, v));
  return r;
}

// --- seeded known-bad plans (each must fire its specific check) -------------

struct SelfTest {
  std::string name;
  std::string expect;  ///< check id that must appear among the violations
  verify::CommPlan plan;
  verify::VerifyOptions opts;
};

std::vector<SelfTest> selfTests() {
  std::vector<SelfTest> tests;
  {
    SelfTest t;  // wait expects 2 packets/round, plan delivers 1
    t.name = "bad-count";
    t.expect = "count";
    t.plan.name = t.name;
    t.plan.shape = {2, 1, 1};
    t.plan.addPhaseEdge("send", "recv");
    verify::PlannedWrite w;
    w.phase = "send";
    w.srcNode = 0;
    w.dst = {1, net::kSlice0};
    w.counterId = 0;
    t.plan.writes.push_back(w);
    verify::CounterExpectation e;
    e.site = "recv";
    e.phase = "recv";
    e.client = {1, net::kSlice0};
    e.counterId = 0;
    e.perRound = 2;
    e.recoveryArmed = true;
    t.plan.expectations.push_back(e);
    tests.push_back(std::move(t));
  }
  {
    SelfTest t;  // +x links all the way around a 4-ring: the walk re-enters
    t.name = "bad-multicast-cycle";
    t.expect = "multicast.cycle";
    t.plan.name = t.name;
    t.plan.shape = {4, 1, 1};
    verify::MulticastPlanEntry m;
    m.patternId = 7;
    m.srcNode = 0;
    int xPlus = net::RingLayout::adapterIndex(0, +1);
    for (int n = 0; n < 4; ++n)
      m.entries[n].linkMask = std::uint8_t(1u << xPlus);
    m.entries[2].clientMask = std::uint8_t(1u << net::kSlice0);
    m.declaredDests = {{2, net::kSlice0}};
    t.plan.multicasts.push_back(std::move(m));
    tests.push_back(std::move(t));
  }
  {
    SelfTest t;  // pattern id beyond the 256-entry per-node tables
    t.name = "bad-pattern-limit";
    t.expect = "multicast.pattern-limit";
    t.plan.name = t.name;
    t.plan.shape = {2, 1, 1};
    verify::MulticastPlanEntry m;
    m.patternId = net::kMulticastPatterns;  // first invalid id
    m.srcNode = 0;
    m.entries[0].clientMask = std::uint8_t(1u << net::kSlice0);
    m.declaredDests = {{0, net::kSlice0}};
    t.plan.multicasts.push_back(std::move(m));
    tests.push_back(std::move(t));
  }
  {
    SelfTest t;  // no return traffic: nothing orders the next-round write
    t.name = "bad-buffer-reuse";
    t.expect = "buffer-reuse";
    t.plan.name = t.name;
    t.plan.shape = {2, 1, 1};
    t.plan.addPhaseEdge("send", "recv");
    verify::PlannedWrite w;
    w.phase = "send";
    w.srcNode = 0;
    w.dst = {1, net::kSlice0};
    w.counterId = 0;
    t.plan.writes.push_back(w);
    verify::CounterExpectation e;
    e.site = "recv";
    e.phase = "recv";
    e.client = {1, net::kSlice0};
    e.counterId = 0;
    e.perRound = 1;
    e.recoveryArmed = true;
    t.plan.expectations.push_back(e);
    verify::BufferPlan b;
    b.name = "slot";
    b.client = {1, net::kSlice0};
    b.bytes = 32;
    b.freePhase = "recv";
    b.writers.push_back({0, "send"});
    t.plan.buffers.push_back(b);
    tests.push_back(std::move(t));
  }
  {
    SelfTest t;  // reroute around a mid-path outage resumes x after y: x,y,x
    t.name = "bad-route-dim-order";
    t.expect = "route.dim-order";
    t.plan.name = t.name;
    t.plan.shape = {4, 4, 1};
    t.plan.addPhaseEdge("send", "recv");
    verify::PlannedWrite w;
    w.phase = "send";
    w.srcNode = 0;
    w.dst = {anton::util::torusIndex({2, 1, 0}, t.plan.shape), net::kSlice0};
    w.counterId = 0;
    t.plan.writes.push_back(w);
    verify::CounterExpectation e;
    e.site = "recv";
    e.phase = "recv";
    e.client = w.dst;
    e.counterId = 0;
    e.perRound = 1;
    e.recoveryArmed = true;
    t.plan.expectations.push_back(e);
    t.opts.downLinks = {{1, 0, +1}};  // +x out of node (1,0,0) is down
    t.opts.routeIssuesAreErrors = true;
    tests.push_back(std::move(t));
  }
  {
    // The dim-ordered all-reduce with every receive slot single-buffered.
    // Legal under phase-atomic checking (each phase's wait "covers" the
    // frees), but the event graph sees that each node multicasts *before*
    // its wait, so nothing orders a peer's next-round send after this
    // node's read — the race the paper's parity double-buffering exists to
    // prevent.
    SelfTest t;
    t.name = "bad-single-buffered-allreduce";
    t.expect = "buffer-reuse";
    anton::sim::Simulator sim;
    net::Machine machine(sim, {2, 2, 2});
    core::DimOrderedAllReduce reduce(machine);
    t.plan.name = t.name;
    t.plan.shape = {2, 2, 2};
    reduce.appendPlan(t.plan, "");
    for (verify::BufferPlan& b : t.plan.buffers) b.copies = 1;
    tests.push_back(std::move(t));
  }
  {
    SelfTest t;  // both nodes wait for the packet the other sends afterwards
    t.name = "bad-deadlock";
    t.expect = "event.deadlock";
    t.plan.name = t.name;
    t.plan.shape = {2, 1, 1};
    t.plan.addPhase("exchange");
    for (int n = 0; n < 2; ++n) {
      verify::PlannedWrite w;
      w.phase = "exchange";
      w.srcNode = n;
      w.dst = {1 - n, net::kSlice0};
      w.counterId = 0;
      w.seq = 1;  // send issued after the wait below
      t.plan.writes.push_back(w);
      verify::CounterExpectation e;
      e.site = "exchange";
      e.phase = "exchange";
      e.client = {n, net::kSlice0};
      e.counterId = 0;
      e.perRound = 1;
      e.recoveryArmed = true;
      e.seq = 0;
      t.plan.expectations.push_back(e);
    }
    tests.push_back(std::move(t));
  }
  {
    SelfTest t;  // a counted wait with no recovery armed: a dropped packet
                 // would hang the phase forever (gating lint since ISSUE 5)
    t.name = "bad-recovery-unarmed";
    t.expect = "recovery-coverage";
    t.plan.name = t.name;
    t.plan.shape = {2, 1, 1};
    t.plan.addPhaseEdge("send", "recv");
    verify::PlannedWrite w;
    w.phase = "send";
    w.srcNode = 0;
    w.dst = {1, net::kSlice0};
    w.counterId = 0;
    t.plan.writes.push_back(w);
    verify::CounterExpectation e;
    e.site = "recv";
    e.phase = "recv";
    e.client = {1, net::kSlice0};
    e.counterId = 0;
    e.perRound = 1;
    e.recoveryArmed = false;
    t.plan.expectations.push_back(e);
    tests.push_back(std::move(t));
  }
  {
    SelfTest t;  // a down +x link severs a pure-x line fan-out: no reroute
    t.name = "bad-multicast-stalled";
    t.expect = "multicast.stalled";
    t.plan.name = t.name;
    t.plan.shape = {4, 1, 1};
    verify::MulticastPlanEntry m;
    m.patternId = 9;
    m.srcNode = 0;
    int xPlus = net::RingLayout::adapterIndex(0, +1);
    for (int n = 0; n < 3; ++n)
      m.entries[n].linkMask = std::uint8_t(1u << xPlus);
    for (int n = 1; n < 4; ++n) {
      m.entries[n].clientMask = std::uint8_t(1u << net::kSlice0);
      m.declaredDests.push_back({n, net::kSlice0});
    }
    t.plan.multicasts.push_back(std::move(m));
    t.opts.downLinks = {{0, 0, +1}};
    t.opts.routeIssuesAreErrors = true;
    tests.push_back(std::move(t));
  }
  return tests;
}

void runSelfTests(Emitter& em, Totals& t) {
  for (SelfTest& st : selfTests()) {
    verify::VerifyResult r = verify::verifyPlan(st.plan, st.opts);
    bool fired = false;
    for (const verify::Violation& v : r.violations)
      if (v.check == st.expect) fired = true;
    for (const verify::Violation& v : r.lints)  // gating lint selftests
      if (v.check == st.expect) fired = true;
    ++t.selftests;
    if (!fired) ++t.selftestFailures;
    std::ostringstream os;
    os << "{\"kind\":\"selftest\",\"plan\":" << JsonReporter::quoted(st.name)
       << ",\"expected\":" << JsonReporter::quoted(st.expect)
       << ",\"violations\":" << r.violations.size()
       << ",\"fired\":" << (fired ? "true" : "false") << "}";
    em.line(os.str());
  }
}

// --- --lookahead: static parallel-safety audit (ISSUE 8 tentpole) -----------

std::string lookaheadLine(const verify::LookaheadReport& r) {
  std::ostringstream os;
  os << "{\"kind\":\"lookahead\",\"plan\":" << JsonReporter::quoted(r.plan)
     << ",\"sharding\":" << JsonReporter::quoted(r.sharding)
     << ",\"shards\":" << r.numShards
     << ",\"safeLookaheadNs\":" << JsonReporter::number(r.safeLookaheadNs)
     << ",\"conflictDegree\":" << r.conflictDegree
     << ",\"crossShardEdges\":" << r.crossShardEdges
     << ",\"events\":" << r.eventsModeled << ",\"pairs\":" << r.pairs.size()
     << ",\"violations\":" << r.violations.size()
     << ",\"ok\":" << (r.ok() ? "true" : "false") << "}";
  return os.str();
}

void emitLookahead(Emitter& em, const verify::LookaheadReport& r) {
  em.line(lookaheadLine(r));
  for (const verify::Violation& v : r.violations)
    em.line(findingLine(r.plan, v));
  // The tightest (and every violating) edge per shard pair, capped so the
  // golden file stays reviewable; the cap only drops edges that are neither
  // violating nor pair-minimal beyond the 8 tightest.
  std::size_t cap = std::min<std::size_t>(8, r.criticalEdges.size());
  for (std::size_t i = 0; i < cap; ++i) {
    const verify::CriticalEdge& e = r.criticalEdges[i];
    std::ostringstream os;
    os << "{\"kind\":\"critical-edge\",\"plan\":"
       << JsonReporter::quoted(r.plan)
       << ",\"sharding\":" << JsonReporter::quoted(r.sharding)
       << ",\"from\":" << JsonReporter::quoted(e.from)
       << ",\"to\":" << JsonReporter::quoted(e.to)
       << ",\"fromShard\":" << e.fromShard << ",\"toShard\":" << e.toShard
       << ",\"latencyNs\":" << JsonReporter::number(e.latencyNs)
       << ",\"boundNs\":" << JsonReporter::number(e.boundNs)
       << ",\"violates\":" << (e.violates ? "true" : "false") << "}";
    em.line(os.str());
  }
}

/// Audit every registered golden plan under the shipped (safe) shardings,
/// then prove each unsafe-sharding diagnostic fires on a seeded case.
/// Output mirrors to VERIFY_lookahead.json (committed as a golden file).
int runLookahead(const std::string& outPath = "VERIFY_lookahead.json") {
  Emitter em(outPath);
  int audits = 0, violations = 0, selftests = 0, selftestFailures = 0;
  for (const std::string& name : tools::goldenPlanNames()) {
    verify::CommPlan plan = tools::buildNamedPlan(name);
    for (const verify::Sharding& sh :
         {verify::perNodeSharding(plan.shape),
          verify::slabSharding(plan.shape)}) {
      verify::LookaheadReport r = verify::analyzeLookahead(plan, sh);
      ++audits;
      violations += int(r.violations.size());
      emitLookahead(em, r);
    }
  }

  // Seeded-unsafe shardings: each must fire its distinct diagnostic.
  struct UnsafeCase {
    std::string name;
    std::string expect;
    std::string planName;
    verify::Sharding sharding;
  };
  std::vector<UnsafeCase> cases;
  {
    verify::CommPlan md = tools::buildNamedPlan("quickstart-md");
    cases.push_back({"unsafe-split-node", "lookahead.zero", "quickstart-md",
                     verify::splitNodeSharding(md.shape)});
    cases.push_back({"unsafe-zero-cycle", "lookahead.deadlock",
                     "quickstart-md", verify::splitNodeSharding(md.shape)});
  }
  {
    verify::CommPlan ar = tools::buildNamedPlan("table2-allreduce-2x2x2");
    cases.push_back({"unsafe-inflated-claim", "lookahead.slack",
                     "table2-allreduce-2x2x2",
                     verify::claimedLookaheadSharding(ar.shape, 10000.0)});
  }
  for (const UnsafeCase& c : cases) {
    verify::CommPlan plan = tools::buildNamedPlan(c.planName);
    verify::LookaheadReport r = verify::analyzeLookahead(plan, c.sharding);
    std::string edge;  // the named critical edge of the fired diagnostic
    bool fired = false;
    for (const verify::Violation& v : r.violations)
      if (v.check == c.expect) {
        fired = true;
        edge = v.detail;
        break;
      }
    ++selftests;
    if (!fired) ++selftestFailures;
    std::ostringstream os;
    os << "{\"kind\":\"selftest\",\"plan\":" << JsonReporter::quoted(c.name)
       << ",\"expected\":" << JsonReporter::quoted(c.expect)
       << ",\"violations\":" << r.violations.size()
       << ",\"fired\":" << (fired ? "true" : "false")
       << ",\"edge\":" << JsonReporter::quoted(edge) << "}";
    em.line(os.str());
  }

  bool ok = violations == 0 && selftestFailures == 0;
  std::ostringstream os;
  os << "{\"kind\":\"summary\",\"mode\":\"lookahead\",\"audits\":" << audits
     << ",\"violations\":" << violations << ",\"selftests\":" << selftests
     << ",\"selftestFailures\":" << selftestFailures
     << ",\"ok\":" << (ok ? "true" : "false") << "}";
  em.line(os.str());
  std::cerr << (ok ? "verify_plans --lookahead: OK"
                   : "verify_plans --lookahead: FAILED")
            << " (" << audits << " audits, " << violations << " violations, "
            << selftestFailures << "/" << selftests << " selftest failures)\n";
  return ok ? 0 : 1;
}

// --- --oracle: dynamic causal-order cross-check -----------------------------

/// One live execution of an oracle workload: serial or sharded, with or
/// without the causal oracle attached.
struct LiveRun {
  sim::Time finalTime = 0;
  net::MachineStats stats;
  sim::CausalLog log;  ///< filled only when the oracle was attached
};

struct OracleWorkload {
  std::string name;
  anton::util::TorusShape shape;
  LiveRun traced;  ///< serial, oracle attached
  LiveRun bare;    ///< serial, oracle detached (must match traced)
  bool statsMatch = false;
};

/// The quickstart MD configuration, run live for two supersteps — the same
/// extraction the "quickstart-md" golden plan audits statically. When a
/// layout is given the run uses the sharded kernel (2 worker threads) with
/// recovery disarmed: the drop registry is the one cross-shard mutable
/// fault-model object, and an armed-but-idle watchdog is timing-invisible,
/// so the result must still be bit-identical to the armed serial run.
LiveRun runMdWorkload(const anton::util::TorusShape& shape, bool withOracle,
                      const sim::ShardLayout* layout) {
  LiveRun r;
  anton::sim::Simulator simulator;
  net::Machine machine(simulator, shape);
  anton::md::SyntheticSystemParams sp;
  sp.targetAtoms = 1536;
  sp.seed = 2010;
  anton::md::AntonMdConfig cfg = tools::quickstartMdConfig();
  if (layout != nullptr) cfg.recoveryTimeoutUs = 0;
  anton::md::AntonMdApp app(machine, anton::md::buildSyntheticSystem(sp),
                            cfg);
  std::optional<sim::ScopedCausalOracle> oracle;
  if (withOracle) oracle.emplace(r.log);
  if (layout != nullptr) simulator.enableSharded(*layout, /*workers=*/2);
  app.runSteps(2);
  if (layout != nullptr) simulator.disableSharded();
  r.finalTime = simulator.now();
  r.stats = machine.stats();
  return r;
}

/// Fig. 5-style counted-write pings on the paper's 8x8x8 torus at 1, 4 and
/// 12 hops (the probe helpers are the same ones behind the Fig. 5 bench).
LiveRun runPingWorkload(const anton::util::TorusShape& shape, bool withOracle,
                        const sim::ShardLayout* layout) {
  LiveRun r;
  anton::sim::Simulator simulator;
  net::Machine machine(simulator, shape);
  std::optional<sim::ScopedCausalOracle> oracle;
  if (withOracle) oracle.emplace(r.log);
  if (layout != nullptr) simulator.enableSharded(*layout, /*workers=*/2);
  for (anton::util::TorusCoord dst :
       {anton::util::TorusCoord{1, 0, 0}, anton::util::TorusCoord{2, 2, 0},
        anton::util::TorusCoord{4, 4, 4}})
    net::oneWayLatencyNs(machine, {0, net::kSlice0},
                         {anton::util::torusIndex(dst, shape), net::kSlice0},
                         64);
  if (layout != nullptr) simulator.disableSharded();
  r.finalTime = simulator.now();
  r.stats = machine.stats();
  return r;
}

LiveRun runWorkload(const OracleWorkload& w, bool withOracle,
                    const sim::ShardLayout* layout = nullptr) {
  return w.name == "quickstart-md" ? runMdWorkload(w.shape, withOracle, layout)
                                   : runPingWorkload(w.shape, withOracle, layout);
}

std::string oracleLine(const OracleWorkload& w, const std::string& sharding,
                       const verify::OracleCheckResult& r) {
  std::ostringstream os;
  os << "{\"kind\":\"oracle\",\"workload\":" << JsonReporter::quoted(w.name)
     << ",\"sharding\":" << JsonReporter::quoted(sharding)
     << ",\"records\":" << r.recordsSeen
     << ",\"linkEdges\":" << r.linkEdgesChecked
     << ",\"crossShardEdges\":" << r.crossShardEdges
     << ",\"minObservedNs\":" << JsonReporter::number(r.minObservedNs)
     << ",\"scheduleUnperturbed\":"
     << (w.traced.finalTime == w.bare.finalTime && w.statsMatch ? "true"
                                                                : "false")
     << ",\"violations\":" << r.violations.size()
     << ",\"ok\":" << (r.ok() ? "true" : "false") << "}";
  return os.str();
}

std::string shardedOracleLine(const OracleWorkload& w,
                              const std::string& sharding, bool identical,
                              bool fromContract,
                              const verify::OracleCheckResult& r) {
  std::ostringstream os;
  os << "{\"kind\":\"oracle-sharded\",\"workload\":"
     << JsonReporter::quoted(w.name)
     << ",\"sharding\":" << JsonReporter::quoted(sharding)
     << ",\"workers\":2,\"contract\":" << (fromContract ? "true" : "false")
     << ",\"records\":" << r.recordsSeen
     << ",\"linkEdges\":" << r.linkEdgesChecked
     << ",\"crossShardEdges\":" << r.crossShardEdges
     << ",\"minObservedNs\":" << JsonReporter::number(r.minObservedNs)
     << ",\"bitIdenticalToSerial\":" << (identical ? "true" : "false")
     << ",\"violations\":" << r.violations.size()
     << ",\"ok\":" << (r.ok() && identical ? "true" : "false") << "}";
  return os.str();
}

/// Record a causal trace of the live quickstart MD and Fig. 5 ping shapes,
/// check every observed cross-shard link edge against the same bounds the
/// static analyzer proves, and confirm the oracle knob did not perturb the
/// schedule (final clock identical with the knob off). Then re-run each
/// workload live on the sharded kernel (2 workers, per-node and slab-x,
/// lookahead budget taken from the committed contract when available) and
/// hold the parallel schedule to the same two standards: its causal log
/// passes the oracle check, and its result is bit-identical to serial.
int runOracle() {
  Emitter em("VERIFY_oracle.json");
  int violations = 0, selftests = 0, selftestFailures = 0;
  bool schedulesMatch = true;

  // Prefer the committed lookahead contract — the oracle should exercise
  // the exact budget the kernel ships with. Fall back to the plan-free
  // topology bound (sound for any workload) when run outside a checkout.
  const char* kContractPath = "tests/golden_plans/VERIFY_lookahead.json";
  std::vector<verify::LookaheadContractRow> contract;
  bool haveContract = false;
  try {
    contract = verify::loadLookaheadContract(kContractPath);
    haveContract = true;
  } catch (const std::exception& e) {
    std::cerr << "verify_plans --oracle: warning: " << e.what()
              << "; sharded runs will use the topology bound\n";
  }

  std::vector<OracleWorkload> workloads(2);
  workloads[0].name = "quickstart-md";
  workloads[0].shape = {4, 4, 4};
  workloads[1].name = "fig5-ping";
  workloads[1].shape = {8, 8, 8};
  for (OracleWorkload& w : workloads) {
    w.traced = runWorkload(w, /*withOracle=*/true);
    w.bare = runWorkload(w, /*withOracle=*/false);
    w.statsMatch = w.traced.stats == w.bare.stats;
    schedulesMatch = schedulesMatch &&
                     w.traced.finalTime == w.bare.finalTime && w.statsMatch;
    for (const verify::Sharding& sh :
         {verify::perNodeSharding(w.shape), verify::slabSharding(w.shape)}) {
      verify::OracleCheckResult r =
          verify::checkCausalLog(w.traced.log.records(), w.shape, sh);
      violations += int(r.violations.size());
      em.line(oracleLine(w, sh.name, r));
      for (const verify::Violation& v : r.violations)
        em.line(findingLine(w.name, v));

      // Live sharded execution under this sharding's committed budget.
      sim::ShardLayout layout =
          haveContract
              ? verify::shardLayoutFromContract(contract, w.name, w.shape, sh)
              : verify::shardLayoutFromTopology(w.shape, sh);
      OracleWorkload sharded = w;
      sharded.traced = runWorkload(w, /*withOracle=*/true, &layout);
      bool identical = sharded.traced.finalTime == w.bare.finalTime &&
                       sharded.traced.stats == w.bare.stats;
      schedulesMatch = schedulesMatch && identical;
      verify::OracleCheckResult rs = verify::checkCausalLog(
          sharded.traced.log.records(), w.shape, sh);
      violations += int(rs.violations.size());
      em.line(shardedOracleLine(w, sh.name, identical, haveContract, rs));
      for (const verify::Violation& v : rs.violations)
        em.line(findingLine(w.name + "-sharded", v));
    }
  }

  // Seeded-unsafe claim: a lookahead nobody can guarantee (1 ms) must make
  // the oracle flag the very first observed link crossing.
  {
    const OracleWorkload& w = workloads[0];
    verify::Sharding inflated =
        verify::claimedLookaheadSharding(w.shape, 1.0e6);
    verify::OracleCheckResult r =
        verify::checkCausalLog(w.traced.log.records(), w.shape, inflated);
    bool fired = false;
    for (const verify::Violation& v : r.violations)
      if (v.check == "oracle.lookahead") fired = true;
    ++selftests;
    if (!fired) ++selftestFailures;
    std::ostringstream os;
    os << "{\"kind\":\"selftest\",\"plan\":"
       << JsonReporter::quoted("oracle-inflated-claim")
       << ",\"expected\":" << JsonReporter::quoted("oracle.lookahead")
       << ",\"violations\":" << r.violations.size()
       << ",\"fired\":" << (fired ? "true" : "false") << "}";
    em.line(os.str());
  }

  bool ok = violations == 0 && selftestFailures == 0 && schedulesMatch;
  std::ostringstream os;
  os << "{\"kind\":\"summary\",\"mode\":\"oracle\",\"workloads\":"
     << workloads.size() << ",\"violations\":" << violations
     << ",\"selftests\":" << selftests
     << ",\"selftestFailures\":" << selftestFailures
     << ",\"schedulesMatch\":" << (schedulesMatch ? "true" : "false")
     << ",\"ok\":" << (ok ? "true" : "false") << "}";
  em.line(os.str());
  std::cerr << (ok ? "verify_plans --oracle: OK"
                   : "verify_plans --oracle: FAILED")
            << " (" << workloads.size() << " workloads, " << violations
            << " violations, " << selftestFailures << "/" << selftests
            << " selftest failures, schedules "
            << (schedulesMatch ? "unperturbed" : "PERTURBED") << ")\n";
  return ok ? 0 : 1;
}

// --- --timing: static critical-path & link-occupancy audit (ISSUE 9) --------

std::string timingLine(const verify::TimingReport& r) {
  std::ostringstream os;
  os << "{\"kind\":\"timing\",\"plan\":" << JsonReporter::quoted(r.plan)
     << ",\"rounds\":" << r.rounds << ",\"events\":" << r.eventsModeled
     << ",\"criticalPathNs\":" << JsonReporter::number(r.criticalPathNs)
     << ",\"perRoundNs\":" << JsonReporter::number(r.perRoundNs)
     << ",\"linksUsed\":" << r.linksUsed
     << ",\"maxLinkDemandNs\":" << JsonReporter::number(r.maxLinkDemandNs)
     << ",\"hotspots\":" << r.hotspots.size();
  if (r.degradedAnalyzed)
    os << ",\"degradedCriticalPathNs\":"
       << JsonReporter::number(r.degradedCriticalPathNs)
       << ",\"inflation\":" << JsonReporter::number(r.inflation)
       << ",\"degradedStalled\":" << (r.degradedStalled ? "true" : "false");
  os << ",\"violations\":" << r.violations.size()
     << ",\"ok\":" << (r.ok() ? "true" : "false") << "}";
  return os.str();
}

void emitTiming(Emitter& em, const verify::TimingReport& r) {
  em.line(timingLine(r));
  for (const verify::Violation& v : r.violations)
    em.line(findingLine(r.plan, v));
  // Top hotspots and the bottleneck tail, capped so the golden file stays
  // reviewable (the full tables are in the TimingReport for tests).
  std::size_t hcap = std::min<std::size_t>(4, r.hotspots.size());
  for (std::size_t i = 0; i < hcap; ++i) {
    const verify::LinkLoad& h = r.hotspots[i];
    std::ostringstream os;
    os << "{\"kind\":\"hotspot\",\"plan\":" << JsonReporter::quoted(r.plan)
       << ",\"node\":" << h.node << ",\"link\":"
       << JsonReporter::quoted(std::string(1, "xyz"[std::size_t(h.dim)]) +
                               (h.sign > 0 ? "+" : "-"))
       << ",\"phase\":" << JsonReporter::quoted(h.phase)
       << ",\"packets\":" << h.packets
       << ",\"occupancyNs\":" << JsonReporter::number(h.occupancyNs)
       << ",\"windowNs\":" << JsonReporter::number(h.windowNs)
       << ",\"utilization\":" << JsonReporter::number(h.utilization) << "}";
    em.line(os.str());
  }
  std::size_t pcap = std::min<std::size_t>(6, r.bottleneckPath.size());
  for (std::size_t i = r.bottleneckPath.size() - pcap;
       i < r.bottleneckPath.size(); ++i) {
    const verify::PathStep& s = r.bottleneckPath[i];
    std::ostringstream os;
    os << "{\"kind\":\"critical-event\",\"plan\":"
       << JsonReporter::quoted(r.plan) << ",\"index\":" << i
       << ",\"event\":" << JsonReporter::quoted(s.event)
       << ",\"arrivalNs\":" << JsonReporter::number(s.arrivalNs)
       << ",\"edgeNs\":" << JsonReporter::number(s.edgeNs) << "}";
    em.line(os.str());
  }
}

/// Seeded over-subscribed link: three nodes of an x-line each burst eight
/// 2 KiB packets into node 0, funneling through the shared wrap link — the
/// offered serialization exceeds the static completion window severalfold.
verify::CommPlan contentionFunnelPlan() {
  verify::CommPlan p;
  p.name = "bad-timing-contention";
  p.shape = {4, 1, 1};
  p.addPhaseEdge("burst", "drain");
  verify::CounterExpectation e;
  e.site = "drain";
  e.phase = "drain";
  e.client = {0, net::kSlice0};
  e.counterId = 0;
  e.recoveryArmed = true;
  for (int n = 1; n < 4; ++n) {
    verify::PlannedWrite w;
    w.phase = "burst";
    w.srcNode = n;
    w.dst = {0, net::kSlice0};
    w.counterId = 0;
    w.packets = 8;
    w.bytes = 2048;
    p.writes.push_back(w);
    e.perRound += 8;
    e.bySource[n] = 8;
  }
  p.expectations.push_back(std::move(e));
  // Credit flow control: the drain acks each sender, and the next round's
  // burst waits for the credit. That couples consecutive rounds across
  // nodes, so the plan claims a finite steady-state round (a nonzero
  // per-round budget) — which is exactly what the funnel link cannot
  // serialize.
  for (int n = 1; n < 4; ++n) {
    verify::PlannedWrite ack;
    ack.phase = "drain";
    ack.srcNode = 0;
    ack.dst = {n, net::kSlice0};
    ack.counterId = 1;
    p.writes.push_back(ack);
    verify::CounterExpectation credit;
    credit.site = "burst.credit";
    credit.phase = "burst";
    credit.client = {n, net::kSlice0};
    credit.counterId = 1;
    credit.perRound = 1;
    credit.bySource[0] = 1;
    credit.recoveryArmed = true;
    p.expectations.push_back(std::move(credit));
  }
  verify::BufferPlan b;
  b.name = "drain.slots";
  b.client = {0, net::kSlice0};
  b.bytes = 24 * 2048;
  b.freePhase = "drain";
  for (int n = 1; n < 4; ++n) b.writers.push_back({n, "burst"});
  p.buffers.push_back(std::move(b));
  return p;
}

/// Audit every golden plan (healthy, plus a degraded Fig. 5 variant), then
/// prove the seeded-bad plans fire their timing diagnostics. Output mirrors
/// to VERIFY_timing.json (committed).
int runTiming(const std::string& outPath = "VERIFY_timing.json") {
  Emitter em(outPath);
  int audits = 0, violations = 0, selftests = 0, selftestFailures = 0;
  for (const std::string& name : tools::goldenPlanNames()) {
    verify::TimingReport r = verify::analyzeTiming(tools::buildNamedPlan(name));
    ++audits;
    violations += int(r.violations.size());
    emitTiming(em, r);
  }
  // Degraded re-pricing of the Fig. 5 topology. Minimal dimension-ordered
  // routing detours only while another dimension still has distance, so the
  // down link must sit where every flow crossing it has multi-dimension
  // remaining work: the +x link out of (6,4,4) carries only the (4,4,4)
  // pong's x-leg (y and z still pending), which reroutes cleanly and the
  // inflation stays under the blowup factor. Down links that strand a
  // single-dimension flow are the stall selftest's territory below.
  {
    verify::CommPlan plan = tools::buildNamedPlan("fig5-ping");
    plan.name = "fig5-ping-degraded";
    verify::TimingOptions opts;
    opts.downLinks = {
        {anton::util::torusIndex({6, 4, 4}, plan.shape), 0, +1}};
    verify::TimingReport r = verify::analyzeTiming(plan, opts);
    ++audits;
    violations += int(r.violations.size());
    emitTiming(em, r);
  }

  struct TimingSelfTest {
    std::string name;
    std::string expect;
    verify::CommPlan plan;
    verify::TimingOptions opts;
    net::LatencyConfig lat;
  };
  std::vector<TimingSelfTest> tests;
  {
    TimingSelfTest t;
    t.name = "bad-timing-contention";
    t.expect = "timing.contention";
    t.plan = contentionFunnelPlan();
    tests.push_back(std::move(t));
  }
  {
    // Degraded route that blows up the critical path: two staggered down +x
    // links zigzag the ping into five ring crossings where the healthy
    // dimension-ordered route pays two (the rest rides straight-through
    // transit), and an expensive on-chip ring turns each extra crossing
    // into real time. The write is in-order so the turns price exactly.
    TimingSelfTest t;
    t.name = "bad-timing-degraded-blowup";
    t.expect = "timing.degraded-blowup";
    t.plan = tools::buildPingPlan({4, 2, 0}, {8, 4, 1});
    t.plan.name = "bad-timing-degraded-blowup";
    t.plan.writes[0].inOrder = true;
    t.opts.downLinks = {
        {anton::util::torusIndex({1, 0, 0}, {8, 4, 1}), 0, +1},
        {anton::util::torusIndex({2, 1, 0}, {8, 4, 1}), 0, +1}};
    t.lat.routerHopEachNs = 500.0;
    tests.push_back(std::move(t));
  }
  {
    // Unreachable delivery: a 1-D line cannot reroute around an on-axis
    // outage, so the declared down link leaves the ping with no finite
    // bound at all.
    TimingSelfTest t;
    t.name = "bad-timing-stalled";
    t.expect = "timing.stalled";
    t.plan = tools::buildPingPlan({1, 0, 0}, {4, 1, 1});
    t.plan.name = "bad-timing-stalled";
    t.opts.downLinks = {{0, 0, +1}};
    tests.push_back(std::move(t));
  }
  for (TimingSelfTest& st : tests) {
    verify::TimingReport r = verify::analyzeTiming(st.plan, st.opts, st.lat);
    std::string detail;
    bool fired = false;
    for (const verify::Violation& v : r.violations)
      if (v.check == st.expect) {
        fired = true;
        detail = v.detail;
        break;
      }
    ++selftests;
    if (!fired) ++selftestFailures;
    std::ostringstream os;
    os << "{\"kind\":\"selftest\",\"plan\":" << JsonReporter::quoted(st.name)
       << ",\"expected\":" << JsonReporter::quoted(st.expect)
       << ",\"violations\":" << r.violations.size()
       << ",\"fired\":" << (fired ? "true" : "false")
       << ",\"detail\":" << JsonReporter::quoted(detail) << "}";
    em.line(os.str());
  }

  bool ok = violations == 0 && selftestFailures == 0;
  std::ostringstream os;
  os << "{\"kind\":\"summary\",\"mode\":\"timing\",\"audits\":" << audits
     << ",\"violations\":" << violations << ",\"selftests\":" << selftests
     << ",\"selftestFailures\":" << selftestFailures
     << ",\"ok\":" << (ok ? "true" : "false") << "}";
  em.line(os.str());
  std::cerr << (ok ? "verify_plans --timing: OK"
                   : "verify_plans --timing: FAILED")
            << " (" << audits << " audits, " << violations << " violations, "
            << selftestFailures << "/" << selftests << " selftest failures)\n";
  return ok ? 0 : 1;
}

// --- --timing-oracle: measured-latency oracle --------------------------------

struct TimingOracleCase {
  std::string family;  ///< envelope key (tools::timingSlackEnvelope)
  std::string name;    ///< case label, e.g. "fig5-ping-4-4-4"
  double measuredNs = 0.0;
  double boundNs = 0.0;
  bool unperturbed = false;  ///< oracle on/off schedules bit-identical
  std::uint64_t records = 0;  ///< causal-log records attributed
};

double pingCaseNs(anton::util::TorusCoord corner, sim::CausalLog* log,
                  net::MachineStats* stats) {
  anton::sim::Simulator simulator;
  net::Machine machine(simulator, {8, 8, 8});
  std::optional<sim::ScopedCausalOracle> oracle;
  if (log != nullptr) oracle.emplace(*log);
  double ns = net::oneWayLatencyNs(
      machine, {0, net::kSlice0},
      {anton::util::torusIndex(corner, {8, 8, 8}), net::kSlice0},
      /*payloadBytes=*/0);
  *stats = machine.stats();
  return ns;
}

struct MdMeasure {
  double finalNs = 0.0;
  net::MachineStats stats;
  bool worstCaseStep = false;  ///< a step ran long-range + thermostat +
                               ///< migration (the extracted template round)
};

MdMeasure mdCaseNs(int steps, sim::CausalLog* log) {
  anton::sim::Simulator simulator;
  net::Machine machine(simulator, {4, 4, 4});
  anton::md::SyntheticSystemParams sp;
  sp.targetAtoms = 1536;
  sp.seed = 2010;
  anton::md::AntonMdApp app(machine, anton::md::buildSyntheticSystem(sp),
                            tools::quickstartMdConfig());
  std::optional<sim::ScopedCausalOracle> oracle;
  if (log != nullptr) oracle.emplace(*log);
  app.runSteps(steps);
  MdMeasure m;
  m.finalNs = sim::toNs(simulator.now());
  m.stats = machine.stats();
  for (const anton::md::StepTiming& st : app.stepTimings())
    if (st.longRange && st.thermostat && st.migration) m.worstCaseStep = true;
  return m;
}

double allReduceCaseNs(sim::CausalLog* log, net::MachineStats* stats) {
  anton::sim::Simulator arena;
  net::Machine machine(arena, {2, 2, 2});
  core::DimOrderedAllReduce reduce(machine);
  std::optional<sim::ScopedCausalOracle> oracle;
  if (log != nullptr) oracle.emplace(*log);
  const int n = machine.numNodes();
  std::vector<std::vector<double>> out;
  out.resize(std::size_t(n));
  auto task = [&](int node) -> sim::Task {
    std::vector<double> in(4, double(node));
    co_await reduce.run(node, std::move(in), &out[std::size_t(node)]);
  };
  for (int node = 0; node < n; ++node) arena.spawn(task(node));
  arena.run();
  *stats = machine.stats();
  return sim::toNs(arena.now());
}

/// Run the live ping / MD / all-reduce schedules with causal-log
/// attribution and enforce the soundness contract of the static bound:
/// measured completion >= analyzeTiming's lower bound, with the
/// measured/bound slack ratio inside the family's pinned envelope, and the
/// oracle knob itself leaving the schedule bit-identical. A seeded inflated
/// bound must be refuted by the live measurement.
int runTimingOracle() {
  Emitter em("VERIFY_timing_oracle.json");
  int violations = 0, selftests = 0, selftestFailures = 0;
  bool schedulesMatch = true;
  std::vector<TimingOracleCase> cases;
  double measured1HopNs = 0.0;  // reused by the inflated-bound selftest

  // Fig. 5 family: one-way counted-write pings at 1, 4 and 12 hops.
  for (anton::util::TorusCoord corner :
       {anton::util::TorusCoord{1, 0, 0}, anton::util::TorusCoord{2, 2, 0},
        anton::util::TorusCoord{4, 4, 4}}) {
    TimingOracleCase c;
    c.family = "fig5-ping";
    verify::CommPlan plan = tools::buildPingPlan(corner);
    c.name = "fig5-" + plan.name;
    verify::TimingOptions opts;
    opts.rounds = 1;
    c.boundNs = verify::analyzeTiming(plan, opts).criticalPathNs;
    sim::CausalLog log;
    net::MachineStats stats, statsBare;
    c.measuredNs = pingCaseNs(corner, &log, &stats);
    double bare = pingCaseNs(corner, nullptr, &statsBare);
    c.unperturbed = c.measuredNs == bare && stats == statsBare;
    c.records = std::uint64_t(log.records().size());
    if (corner == anton::util::TorusCoord{1, 0, 0})
      measured1HopNs = c.measuredNs;
    cases.push_back(std::move(c));
  }

  // Quickstart MD family: the full run's final time against the one-round
  // bound of the worst-case superstep template; the run must contain at
  // least one worst-case step for the comparison to be meaningful.
  {
    TimingOracleCase c;
    c.family = "quickstart-md";
    c.name = "quickstart-md";
    verify::TimingOptions opts;
    opts.rounds = 1;
    c.boundNs =
        verify::analyzeTiming(tools::buildNamedPlan("quickstart-md"), opts)
            .criticalPathNs;
    sim::CausalLog log;
    MdMeasure m = mdCaseNs(2, &log);
    if (!m.worstCaseStep) {
      // Cadences guarantee a worst-case step within one migration interval.
      log = sim::CausalLog();
      m = mdCaseNs(8, &log);
      MdMeasure bare = mdCaseNs(8, nullptr);
      c.unperturbed = m.finalNs == bare.finalNs && m.stats == bare.stats;
    } else {
      MdMeasure bare = mdCaseNs(2, nullptr);
      c.unperturbed = m.finalNs == bare.finalNs && m.stats == bare.stats;
    }
    if (!m.worstCaseStep) {
      verify::Violation v;
      v.check = "timing.bound";
      v.site = c.name;
      v.detail = "no worst-case MD step executed: the one-round bound has "
                 "nothing to anchor against";
      ++violations;
      em.line(findingLine(c.name, v));
    }
    c.measuredNs = m.finalNs;
    c.records = std::uint64_t(log.records().size());
    cases.push_back(std::move(c));
  }

  // Table 2 family: one live dim-ordered all-reduce call on the 2x2x2 torus.
  {
    TimingOracleCase c;
    c.family = "table2-allreduce";
    c.name = "table2-allreduce-2x2x2";
    verify::TimingOptions opts;
    opts.rounds = 1;
    c.boundNs = verify::analyzeTiming(
                    tools::buildNamedPlan("table2-allreduce-2x2x2"), opts)
                    .criticalPathNs;
    sim::CausalLog log;
    net::MachineStats stats, statsBare;
    c.measuredNs = allReduceCaseNs(&log, &stats);
    double bare = allReduceCaseNs(nullptr, &statsBare);
    c.unperturbed = c.measuredNs == bare && stats == statsBare;
    c.records = std::uint64_t(log.records().size());
    cases.push_back(std::move(c));
  }

  for (const TimingOracleCase& c : cases) {
    std::vector<verify::Violation> vs;
    double ratio = c.boundNs > 0.0 ? c.measuredNs / c.boundNs : 0.0;
    tools::SlackEnvelope env = tools::timingSlackEnvelope(c.family);
    if (c.measuredNs < c.boundNs) {
      verify::Violation v;
      v.check = "timing.bound";
      v.site = c.name;
      v.detail = "static lower bound " + std::to_string(c.boundNs) +
                 " ns exceeds the measured completion " +
                 std::to_string(c.measuredNs) +
                 " ns: the bound is refuted by the live schedule";
      vs.push_back(std::move(v));
    } else if (ratio > env.maxRatio) {
      verify::Violation v;
      v.check = "timing.slack-envelope";
      v.site = c.name;
      v.detail = "measured/bound slack " + std::to_string(ratio) +
                 " exceeds the pinned envelope " +
                 std::to_string(env.maxRatio) + " for family '" + c.family +
                 "': the static pricing decoupled from the machine model";
      vs.push_back(std::move(v));
    }
    violations += int(vs.size());
    schedulesMatch = schedulesMatch && c.unperturbed;
    std::ostringstream os;
    os << "{\"kind\":\"timing-oracle\",\"family\":"
       << JsonReporter::quoted(c.family)
       << ",\"case\":" << JsonReporter::quoted(c.name)
       << ",\"measuredNs\":" << JsonReporter::number(c.measuredNs)
       << ",\"boundNs\":" << JsonReporter::number(c.boundNs)
       << ",\"ratio\":" << JsonReporter::number(ratio)
       << ",\"maxRatio\":" << JsonReporter::number(env.maxRatio)
       << ",\"records\":" << c.records << ",\"scheduleUnperturbed\":"
       << (c.unperturbed ? "true" : "false")
       << ",\"violations\":" << vs.size()
       << ",\"ok\":" << (vs.empty() ? "true" : "false") << "}";
    em.line(os.str());
    for (const verify::Violation& v : vs) em.line(findingLine(c.name, v));
  }

  // Seeded inflated bound: with assembly priced at 50 us the static "bound"
  // for the 1-hop ping dwarfs the live 162 ns measurement — the oracle must
  // refute it (measured < claimed bound).
  {
    net::LatencyConfig inflated;
    inflated.assemblyNs = 50000.0;
    verify::TimingOptions opts;
    opts.rounds = 1;
    double claimed =
        verify::analyzeTiming(tools::buildPingPlan({1, 0, 0}), opts, inflated)
            .criticalPathNs;
    bool fired = measured1HopNs < claimed;
    ++selftests;
    if (!fired) ++selftestFailures;
    std::ostringstream os;
    os << "{\"kind\":\"selftest\",\"plan\":"
       << JsonReporter::quoted("bad-timing-inflated-bound")
       << ",\"expected\":" << JsonReporter::quoted("timing.bound")
       << ",\"claimedNs\":" << JsonReporter::number(claimed)
       << ",\"measuredNs\":" << JsonReporter::number(measured1HopNs)
       << ",\"fired\":" << (fired ? "true" : "false") << "}";
    em.line(os.str());
  }

  bool ok = violations == 0 && selftestFailures == 0 && schedulesMatch;
  std::ostringstream os;
  os << "{\"kind\":\"summary\",\"mode\":\"timing-oracle\",\"cases\":"
     << cases.size() << ",\"violations\":" << violations
     << ",\"selftests\":" << selftests
     << ",\"selftestFailures\":" << selftestFailures
     << ",\"schedulesMatch\":" << (schedulesMatch ? "true" : "false")
     << ",\"ok\":" << (ok ? "true" : "false") << "}";
  em.line(os.str());
  std::cerr << (ok ? "verify_plans --timing-oracle: OK"
                   : "verify_plans --timing-oracle: FAILED")
            << " (" << cases.size() << " cases, " << violations
            << " violations, " << selftestFailures << "/" << selftests
            << " selftest failures, schedules "
            << (schedulesMatch ? "unperturbed" : "PERTURBED") << ")\n";
  return ok ? 0 : 1;
}

// --- --diff / --dump-plans ---------------------------------------------------

verify::CommPlan loadPlanArg(const std::string& arg) {
  if (std::filesystem::exists(arg)) {
    std::ifstream in(arg);
    if (!in) throw std::runtime_error("cannot read " + arg);
    std::ostringstream buf;
    buf << in.rdbuf();
    return verify::planFromJson(buf.str());
  }
  return tools::buildNamedPlan(arg);
}

int runDiff(const std::string& a, const std::string& b) {
  verify::CommPlan pa = loadPlanArg(a);
  verify::CommPlan pb = loadPlanArg(b);
  verify::PlanDelta delta = verify::diffPlans(pa, pb);
  for (const verify::PlanDeltaEntry& e : delta.entries)
    std::cout << e.category << " | " << e.site << " | " << e.detail << "\n";
  if (delta.identical()) {
    std::cerr << "verify_plans --diff: plans are structurally identical\n";
    return 0;
  }
  std::cerr << "verify_plans --diff: " << delta.entries.size()
            << " structural difference(s) between '" << a << "' and '" << b
            << "'\n";
  return 1;
}

/// --plan-keys: one "<name> <planKeyHex>" line per shipped golden plan.
/// The hex is verify::planKey over the canonical snapshot bytes — the same
/// stable identity the serve cache folds into its job keys, pinned as
/// constants by golden_plan_test.
int runPlanKeys() {
  for (const std::string& name : tools::goldenPlanNames())
    std::cout << name << " "
              << verify::planKeyHex(tools::buildNamedPlan(name)) << "\n";
  return 0;
}

int runDump(const std::string& dir) {
  std::filesystem::create_directories(dir);
  for (const std::string& name : tools::goldenPlanNames()) {
    std::filesystem::path path =
        std::filesystem::path(dir) / (name + ".json");
    std::ofstream out(path);
    if (!out) throw std::runtime_error("cannot write " + path.string());
    out << verify::planToJson(tools::buildNamedPlan(name));
    std::cerr << "wrote " << path.string() << "\n";
  }
  return 0;
}

/// --update-goldens: regenerate every committed snapshot in place — the
/// plan JSON files plus the golden-diffed verify reports — so an intended
/// extractor or pricing change is a one-command refresh.
int runUpdateGoldens(const std::string& dir) {
  runDump(dir);
  int la = runLookahead(
      (std::filesystem::path(dir) / "VERIFY_lookahead.json").string());
  int ti =
      runTiming((std::filesystem::path(dir) / "VERIFY_timing.json").string());
  std::cerr << "verify_plans --update-goldens: refreshed snapshots and "
               "verify reports in "
            << dir << "\n";
  return la != 0 || ti != 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool fast = false, selftestOnly = false;
  try {
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--diff") == 0) {
        if (i + 2 >= argc) {
          std::cerr << "usage: verify_plans --diff <plan-or-file> "
                       "<plan-or-file>\n";
          return 2;
        }
        return runDiff(argv[i + 1], argv[i + 2]);
      }
      if (std::strcmp(argv[i], "--dump-plans") == 0) {
        if (i + 1 >= argc) {
          std::cerr << "usage: verify_plans --dump-plans <dir>\n";
          return 2;
        }
        return runDump(argv[i + 1]);
      }
      if (std::strcmp(argv[i], "--plan-keys") == 0) return runPlanKeys();
      if (std::strcmp(argv[i], "--lookahead") == 0) return runLookahead();
      if (std::strcmp(argv[i], "--oracle") == 0) return runOracle();
      if (std::strcmp(argv[i], "--timing") == 0) return runTiming();
      if (std::strcmp(argv[i], "--timing-oracle") == 0)
        return runTimingOracle();
      if (std::strcmp(argv[i], "--update-goldens") == 0) {
        std::string dir = "tests/golden_plans";
        if (i + 1 < argc && argv[i + 1][0] != '-') dir = argv[i + 1];
        return runUpdateGoldens(dir);
      }
      if (std::strcmp(argv[i], "--fast") == 0) {
        fast = true;
      } else if (std::strcmp(argv[i], "--selftest-only") == 0) {
        selftestOnly = true;
      } else {
        std::cerr << "usage: verify_plans [--fast] [--selftest-only] "
                     "[--dump-plans DIR] [--diff A B] [--plan-keys] "
                     "[--lookahead] [--oracle] [--timing] [--timing-oracle] "
                     "[--update-goldens [DIR]]\n";
        return 2;
      }
    }
    Emitter em;
    Totals t;
    if (!selftestOnly) {
      runPlan(em, t, tools::buildNamedPlan("quickstart-md"));
      runPlan(em, t, tools::buildNamedPlan("fig5-ping"));
      {
        // The same topology audited in degraded mode: a down +x link out of
        // node 0 exercises the reroute path (lints, not errors, so the
        // shipped plan stays green while the reroutes are reported).
        verify::CommPlan p = tools::buildNamedPlan("fig5-ping");
        p.name = "fig5-ping-degraded";
        verify::VerifyOptions opts;
        opts.downLinks = {{0, 0, +1}};
        opts.routeIssuesAreErrors = false;
        runPlan(em, t, p, opts);
      }
      for (const char* shape :
           {"4x4x4", "8x2x8", "8x8x4", "8x8x8", "8x8x16"})
        runPlan(em, t, tools::buildNamedPlan(std::string("table2-allreduce-") +
                                             shape));
      {
        // Degraded audit of the line fan-outs: an on-axis outage cannot be
        // rerouted around inside a 1-D line, so the affected trees are
        // reported as stalls (informational here; the live machine would
        // wait out the outage).
        verify::CommPlan p = tools::buildNamedPlan("table2-allreduce-4x4x4");
        p.name = "table2-allreduce-4x4x4-degraded";
        verify::VerifyOptions opts;
        opts.downLinks = {{0, 0, +1}};
        opts.routeIssuesAreErrors = false;
        runPlan(em, t, p, opts);
      }
      {
        // Degraded audit of the MD step: the position-import and flush
        // trees span all three dimensions, so the repair pass re-covers
        // every lost destination with rerouted unicast paths.
        verify::CommPlan p = tools::buildNamedPlan("quickstart-md");
        p.name = "quickstart-md-degraded";
        verify::VerifyOptions opts;
        opts.downLinks = {{0, 0, +1}};
        opts.routeIssuesAreErrors = false;
        runPlan(em, t, p, opts);
      }
      // Degenerate torus with a traffic-carrying extent-1 dimension: pins
      // the reduced-offset half-shell dedup (ISSUE 5 satellite).
      runPlan(em, t, tools::buildNamedPlan("md-4x4x1"));
      runPlan(em, t, tools::buildNamedPlan("fft-pair-2x2x2"));
      runPlan(em, t, tools::buildNamedPlan("cluster-allreduce-512"));
      if (!fast) runPlan(em, t, tools::buildNamedPlan("table3-md-8x8x8"));
    }
    runSelfTests(em, t);

    bool ok = t.violations == 0 && t.recoveryLints == 0 &&
              t.selftestFailures == 0;
    std::ostringstream os;
    os << "{\"kind\":\"summary\",\"plans\":" << t.plans
       << ",\"violations\":" << t.violations << ",\"lints\":" << t.lints
       << ",\"recoveryLints\":" << t.recoveryLints
       << ",\"selftests\":" << t.selftests
       << ",\"selftestFailures\":" << t.selftestFailures
       << ",\"ok\":" << (ok ? "true" : "false") << "}";
    em.line(os.str());
    std::cerr << (ok ? "verify_plans: OK" : "verify_plans: FAILED") << " ("
              << t.plans << " plans, " << t.violations << " violations, "
              << t.lints << " lints of which " << t.recoveryLints
              << " recovery-coverage (gating), " << t.selftestFailures << "/"
              << t.selftests << " selftest failures)\n";
    return ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "verify_plans: " << e.what() << "\n";
    return 2;
  }
}
