# Empty dependencies file for stencil_heat.
# This may be replaced when dependencies are built.
