file(REMOVE_RECURSE
  "CMakeFiles/md_simulation.dir/md_simulation.cpp.o"
  "CMakeFiles/md_simulation.dir/md_simulation.cpp.o.d"
  "md_simulation"
  "md_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/md_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
