file(REMOVE_RECURSE
  "CMakeFiles/fft3d_demo.dir/fft3d_demo.cpp.o"
  "CMakeFiles/fft3d_demo.dir/fft3d_demo.cpp.o.d"
  "fft3d_demo"
  "fft3d_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fft3d_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
