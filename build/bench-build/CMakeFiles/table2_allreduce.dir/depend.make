# Empty dependencies file for table2_allreduce.
# This may be replaced when dependencies are built.
