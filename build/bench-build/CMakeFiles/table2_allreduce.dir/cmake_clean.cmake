file(REMOVE_RECURSE
  "../bench/table2_allreduce"
  "../bench/table2_allreduce.pdb"
  "CMakeFiles/table2_allreduce.dir/table2_allreduce.cpp.o"
  "CMakeFiles/table2_allreduce.dir/table2_allreduce.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_allreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
