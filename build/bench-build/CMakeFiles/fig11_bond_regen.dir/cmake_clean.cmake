file(REMOVE_RECURSE
  "../bench/fig11_bond_regen"
  "../bench/fig11_bond_regen.pdb"
  "CMakeFiles/fig11_bond_regen.dir/fig11_bond_regen.cpp.o"
  "CMakeFiles/fig11_bond_regen.dir/fig11_bond_regen.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_bond_regen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
