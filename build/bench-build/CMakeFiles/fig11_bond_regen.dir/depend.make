# Empty dependencies file for fig11_bond_regen.
# This may be replaced when dependencies are built.
