file(REMOVE_RECURSE
  "../bench/table1_latency_survey"
  "../bench/table1_latency_survey.pdb"
  "CMakeFiles/table1_latency_survey.dir/table1_latency_survey.cpp.o"
  "CMakeFiles/table1_latency_survey.dir/table1_latency_survey.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_latency_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
