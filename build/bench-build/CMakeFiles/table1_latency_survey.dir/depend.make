# Empty dependencies file for table1_latency_survey.
# This may be replaced when dependencies are built.
