# Empty dependencies file for tableX_half_bandwidth.
# This may be replaced when dependencies are built.
