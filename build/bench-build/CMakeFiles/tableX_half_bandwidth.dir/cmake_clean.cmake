file(REMOVE_RECURSE
  "../bench/tableX_half_bandwidth"
  "../bench/tableX_half_bandwidth.pdb"
  "CMakeFiles/tableX_half_bandwidth.dir/tableX_half_bandwidth.cpp.o"
  "CMakeFiles/tableX_half_bandwidth.dir/tableX_half_bandwidth.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tableX_half_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
