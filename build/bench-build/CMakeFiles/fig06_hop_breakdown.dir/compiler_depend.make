# Empty compiler generated dependencies file for fig06_hop_breakdown.
# This may be replaced when dependencies are built.
