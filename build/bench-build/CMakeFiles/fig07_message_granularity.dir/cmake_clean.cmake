file(REMOVE_RECURSE
  "../bench/fig07_message_granularity"
  "../bench/fig07_message_granularity.pdb"
  "CMakeFiles/fig07_message_granularity.dir/fig07_message_granularity.cpp.o"
  "CMakeFiles/fig07_message_granularity.dir/fig07_message_granularity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_message_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
