# Empty compiler generated dependencies file for fig07_message_granularity.
# This may be replaced when dependencies are built.
