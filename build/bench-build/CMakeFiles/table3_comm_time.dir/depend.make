# Empty dependencies file for table3_comm_time.
# This may be replaced when dependencies are built.
