file(REMOVE_RECURSE
  "../bench/table3_comm_time"
  "../bench/table3_comm_time.pdb"
  "CMakeFiles/table3_comm_time.dir/table3_comm_time.cpp.o"
  "CMakeFiles/table3_comm_time.dir/table3_comm_time.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_comm_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
