# Empty dependencies file for fig12_migration_interval.
# This may be replaced when dependencies are built.
