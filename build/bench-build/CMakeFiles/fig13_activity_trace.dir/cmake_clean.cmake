file(REMOVE_RECURSE
  "../bench/fig13_activity_trace"
  "../bench/fig13_activity_trace.pdb"
  "CMakeFiles/fig13_activity_trace.dir/fig13_activity_trace.cpp.o"
  "CMakeFiles/fig13_activity_trace.dir/fig13_activity_trace.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_activity_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
