# Empty dependencies file for fig13_activity_trace.
# This may be replaced when dependencies are built.
