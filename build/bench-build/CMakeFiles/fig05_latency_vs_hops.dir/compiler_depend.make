# Empty compiler generated dependencies file for fig05_latency_vs_hops.
# This may be replaced when dependencies are built.
