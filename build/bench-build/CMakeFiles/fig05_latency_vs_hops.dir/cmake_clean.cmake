file(REMOVE_RECURSE
  "../bench/fig05_latency_vs_hops"
  "../bench/fig05_latency_vs_hops.pdb"
  "CMakeFiles/fig05_latency_vs_hops.dir/fig05_latency_vs_hops.cpp.o"
  "CMakeFiles/fig05_latency_vs_hops.dir/fig05_latency_vs_hops.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_latency_vs_hops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
