# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(util_test "/root/repo/build/tests/util_test")
set_tests_properties(util_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;9;anton_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sim_test "/root/repo/build/tests/sim_test")
set_tests_properties(sim_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;10;anton_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(net_latency_test "/root/repo/build/tests/net_latency_test")
set_tests_properties(net_latency_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;11;anton_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(net_delivery_test "/root/repo/build/tests/net_delivery_test")
set_tests_properties(net_delivery_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;12;anton_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(core_multicast_test "/root/repo/build/tests/core_multicast_test")
set_tests_properties(core_multicast_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;13;anton_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(core_allreduce_test "/root/repo/build/tests/core_allreduce_test")
set_tests_properties(core_allreduce_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;14;anton_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(trace_test "/root/repo/build/tests/trace_test")
set_tests_properties(trace_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;15;anton_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(fft_test "/root/repo/build/tests/fft_test")
set_tests_properties(fft_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;16;anton_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cluster_test "/root/repo/build/tests/cluster_test")
set_tests_properties(cluster_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;17;anton_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(md_forces_test "/root/repo/build/tests/md_forces_test")
set_tests_properties(md_forces_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;18;anton_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(md_engine_test "/root/repo/build/tests/md_engine_test")
set_tests_properties(md_engine_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;19;anton_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(md_anton_test "/root/repo/build/tests/md_anton_test")
set_tests_properties(md_anton_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;20;anton_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(core_primitives_test "/root/repo/build/tests/core_primitives_test")
set_tests_properties(core_primitives_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;21;anton_test;/root/repo/tests/CMakeLists.txt;0;")
