file(REMOVE_RECURSE
  "CMakeFiles/md_engine_test.dir/md_engine_test.cpp.o"
  "CMakeFiles/md_engine_test.dir/md_engine_test.cpp.o.d"
  "md_engine_test"
  "md_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/md_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
