# Empty dependencies file for core_allreduce_test.
# This may be replaced when dependencies are built.
