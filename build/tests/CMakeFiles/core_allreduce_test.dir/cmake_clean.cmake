file(REMOVE_RECURSE
  "CMakeFiles/core_allreduce_test.dir/core_allreduce_test.cpp.o"
  "CMakeFiles/core_allreduce_test.dir/core_allreduce_test.cpp.o.d"
  "core_allreduce_test"
  "core_allreduce_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_allreduce_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
