file(REMOVE_RECURSE
  "CMakeFiles/net_delivery_test.dir/net_delivery_test.cpp.o"
  "CMakeFiles/net_delivery_test.dir/net_delivery_test.cpp.o.d"
  "net_delivery_test"
  "net_delivery_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_delivery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
