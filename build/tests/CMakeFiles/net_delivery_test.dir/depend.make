# Empty dependencies file for net_delivery_test.
# This may be replaced when dependencies are built.
