file(REMOVE_RECURSE
  "CMakeFiles/md_anton_test.dir/md_anton_test.cpp.o"
  "CMakeFiles/md_anton_test.dir/md_anton_test.cpp.o.d"
  "md_anton_test"
  "md_anton_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/md_anton_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
