# Empty compiler generated dependencies file for md_anton_test.
# This may be replaced when dependencies are built.
