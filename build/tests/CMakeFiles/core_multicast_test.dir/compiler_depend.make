# Empty compiler generated dependencies file for core_multicast_test.
# This may be replaced when dependencies are built.
