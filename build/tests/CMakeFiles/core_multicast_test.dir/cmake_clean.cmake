file(REMOVE_RECURSE
  "CMakeFiles/core_multicast_test.dir/core_multicast_test.cpp.o"
  "CMakeFiles/core_multicast_test.dir/core_multicast_test.cpp.o.d"
  "core_multicast_test"
  "core_multicast_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_multicast_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
