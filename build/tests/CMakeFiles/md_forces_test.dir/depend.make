# Empty dependencies file for md_forces_test.
# This may be replaced when dependencies are built.
