file(REMOVE_RECURSE
  "CMakeFiles/md_forces_test.dir/md_forces_test.cpp.o"
  "CMakeFiles/md_forces_test.dir/md_forces_test.cpp.o.d"
  "md_forces_test"
  "md_forces_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/md_forces_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
