
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/collectives.cpp" "src/cluster/CMakeFiles/anton_cluster.dir/collectives.cpp.o" "gcc" "src/cluster/CMakeFiles/anton_cluster.dir/collectives.cpp.o.d"
  "/root/repo/src/cluster/desmond.cpp" "src/cluster/CMakeFiles/anton_cluster.dir/desmond.cpp.o" "gcc" "src/cluster/CMakeFiles/anton_cluster.dir/desmond.cpp.o.d"
  "/root/repo/src/cluster/network.cpp" "src/cluster/CMakeFiles/anton_cluster.dir/network.cpp.o" "gcc" "src/cluster/CMakeFiles/anton_cluster.dir/network.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/anton_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/anton_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
