file(REMOVE_RECURSE
  "CMakeFiles/anton_cluster.dir/collectives.cpp.o"
  "CMakeFiles/anton_cluster.dir/collectives.cpp.o.d"
  "CMakeFiles/anton_cluster.dir/desmond.cpp.o"
  "CMakeFiles/anton_cluster.dir/desmond.cpp.o.d"
  "CMakeFiles/anton_cluster.dir/network.cpp.o"
  "CMakeFiles/anton_cluster.dir/network.cpp.o.d"
  "libanton_cluster.a"
  "libanton_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anton_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
