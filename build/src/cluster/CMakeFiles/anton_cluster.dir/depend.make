# Empty dependencies file for anton_cluster.
# This may be replaced when dependencies are built.
