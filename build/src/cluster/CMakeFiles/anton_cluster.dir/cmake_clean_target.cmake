file(REMOVE_RECURSE
  "libanton_cluster.a"
)
