file(REMOVE_RECURSE
  "CMakeFiles/anton_net.dir/client.cpp.o"
  "CMakeFiles/anton_net.dir/client.cpp.o.d"
  "CMakeFiles/anton_net.dir/machine.cpp.o"
  "CMakeFiles/anton_net.dir/machine.cpp.o.d"
  "CMakeFiles/anton_net.dir/node.cpp.o"
  "CMakeFiles/anton_net.dir/node.cpp.o.d"
  "CMakeFiles/anton_net.dir/packet.cpp.o"
  "CMakeFiles/anton_net.dir/packet.cpp.o.d"
  "libanton_net.a"
  "libanton_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anton_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
