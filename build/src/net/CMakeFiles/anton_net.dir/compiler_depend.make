# Empty compiler generated dependencies file for anton_net.
# This may be replaced when dependencies are built.
