file(REMOVE_RECURSE
  "libanton_net.a"
)
