file(REMOVE_RECURSE
  "CMakeFiles/anton_md.dir/anton_app.cpp.o"
  "CMakeFiles/anton_md.dir/anton_app.cpp.o.d"
  "CMakeFiles/anton_md.dir/engine.cpp.o"
  "CMakeFiles/anton_md.dir/engine.cpp.o.d"
  "CMakeFiles/anton_md.dir/ewald.cpp.o"
  "CMakeFiles/anton_md.dir/ewald.cpp.o.d"
  "CMakeFiles/anton_md.dir/forces.cpp.o"
  "CMakeFiles/anton_md.dir/forces.cpp.o.d"
  "CMakeFiles/anton_md.dir/system.cpp.o"
  "CMakeFiles/anton_md.dir/system.cpp.o.d"
  "libanton_md.a"
  "libanton_md.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anton_md.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
