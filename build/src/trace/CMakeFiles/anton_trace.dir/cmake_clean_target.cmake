file(REMOVE_RECURSE
  "libanton_trace.a"
)
