file(REMOVE_RECURSE
  "CMakeFiles/anton_trace.dir/activity.cpp.o"
  "CMakeFiles/anton_trace.dir/activity.cpp.o.d"
  "libanton_trace.a"
  "libanton_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anton_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
