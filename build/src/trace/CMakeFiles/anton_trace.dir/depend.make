# Empty dependencies file for anton_trace.
# This may be replaced when dependencies are built.
