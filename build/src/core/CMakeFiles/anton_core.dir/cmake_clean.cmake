file(REMOVE_RECURSE
  "CMakeFiles/anton_core.dir/allreduce.cpp.o"
  "CMakeFiles/anton_core.dir/allreduce.cpp.o.d"
  "CMakeFiles/anton_core.dir/multicast.cpp.o"
  "CMakeFiles/anton_core.dir/multicast.cpp.o.d"
  "CMakeFiles/anton_core.dir/neighborhood.cpp.o"
  "CMakeFiles/anton_core.dir/neighborhood.cpp.o.d"
  "libanton_core.a"
  "libanton_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anton_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
