file(REMOVE_RECURSE
  "libanton_util.a"
)
