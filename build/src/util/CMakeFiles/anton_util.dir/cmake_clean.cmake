file(REMOVE_RECURSE
  "CMakeFiles/anton_util.dir/csv.cpp.o"
  "CMakeFiles/anton_util.dir/csv.cpp.o.d"
  "CMakeFiles/anton_util.dir/stats.cpp.o"
  "CMakeFiles/anton_util.dir/stats.cpp.o.d"
  "CMakeFiles/anton_util.dir/table.cpp.o"
  "CMakeFiles/anton_util.dir/table.cpp.o.d"
  "CMakeFiles/anton_util.dir/torus_coord.cpp.o"
  "CMakeFiles/anton_util.dir/torus_coord.cpp.o.d"
  "libanton_util.a"
  "libanton_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anton_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
