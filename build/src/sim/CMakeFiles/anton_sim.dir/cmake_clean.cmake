file(REMOVE_RECURSE
  "CMakeFiles/anton_sim.dir/simulator.cpp.o"
  "CMakeFiles/anton_sim.dir/simulator.cpp.o.d"
  "libanton_sim.a"
  "libanton_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anton_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
