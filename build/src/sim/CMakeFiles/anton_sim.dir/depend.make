# Empty dependencies file for anton_sim.
# This may be replaced when dependencies are built.
