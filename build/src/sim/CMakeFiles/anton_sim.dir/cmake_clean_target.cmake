file(REMOVE_RECURSE
  "libanton_sim.a"
)
