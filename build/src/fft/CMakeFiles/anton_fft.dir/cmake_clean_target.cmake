file(REMOVE_RECURSE
  "libanton_fft.a"
)
