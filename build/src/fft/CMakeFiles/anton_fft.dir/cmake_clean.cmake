file(REMOVE_RECURSE
  "CMakeFiles/anton_fft.dir/distributed.cpp.o"
  "CMakeFiles/anton_fft.dir/distributed.cpp.o.d"
  "CMakeFiles/anton_fft.dir/fft1d.cpp.o"
  "CMakeFiles/anton_fft.dir/fft1d.cpp.o.d"
  "CMakeFiles/anton_fft.dir/grid3d.cpp.o"
  "CMakeFiles/anton_fft.dir/grid3d.cpp.o.d"
  "libanton_fft.a"
  "libanton_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anton_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
